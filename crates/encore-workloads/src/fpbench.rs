//! SPEC2000 floating-point stand-in kernels.
//!
//! FP codes stream through distinct input/output arrays far more than
//! the integer suite, which is exactly why the paper finds them spending
//! more dynamic time in naturally idempotent regions (§5.2): 172.mgrid
//! is a pure stencil, 173.applu a sweep with one cheap scalar WAR,
//! 177.mesa a vertex pipeline with an in-place depth buffer (expensive
//! to checkpoint), 179.art a winner-take-all network with a narrow
//! weight update, and 183.equake a sparse matvec with a residual
//! accumulator.

use crate::util::{emit_cold_diag, lcg_data};
use encore_ir::{AddrExpr, BinOp, FuncId, MemBase, Module, ModuleBuilder, Operand, UnOp};

fn float_init(seed: u64, len: usize) -> Vec<i64> {
    // Integer initializers; kernels convert with IToF on load paths where
    // float math matters.
    lcg_data(seed, len, 1000)
}

/// 172.mgrid — multigrid smoother: two Jacobi-style relaxation passes
/// `u → r → v` over disjoint buffers plus a write-only residual. No WAR
/// anywhere: the paper's fully-idempotent, full-coverage workload.
pub fn build_mgrid() -> (Module, FuncId) {
    const N: usize = 128;
    let mut mb = ModuleBuilder::new("172.mgrid");
    let u = mb.global_init("u", N as u32, float_init(172, N));
    let r = mb.global("r", N as u32);
    let v = mb.global("v", N as u32);
    let res = mb.global("residual", 1);
    let entry = mb.function("smooth", 1, |f| {
        let n = f.param(0);
        let hi = f.bin(BinOp::Sub, n.into(), Operand::ImmI(1));
        // Pass 1: r[i] = (u[i-1] + 2*u[i] + u[i+1]) / 4
        f.for_range(Operand::ImmI(1), hi.into(), |f, i| {
            let a = f.load(AddrExpr::indexed(MemBase::Global(u), i, 1, -1));
            let b = f.load(AddrExpr::indexed(MemBase::Global(u), i, 1, 0));
            let c = f.load(AddrExpr::indexed(MemBase::Global(u), i, 1, 1));
            let b2 = f.bin(BinOp::Mul, b.into(), Operand::ImmI(2));
            let s0 = f.bin(BinOp::Add, a.into(), b2.into());
            let s1 = f.bin(BinOp::Add, s0.into(), c.into());
            let avg = f.bin(BinOp::Div, s1.into(), Operand::ImmI(4));
            f.store(AddrExpr::indexed(MemBase::Global(r), i, 1, 0), avg.into());
        });
        // Pass 2: v[i] = (r[i-1] + r[i+1]) / 2, accumulate residual in a
        // register, store it once (write-only, still idempotent).
        let acc = f.mov(Operand::ImmI(0));
        f.for_range(Operand::ImmI(1), hi.into(), |f, i| {
            let a = f.load(AddrExpr::indexed(MemBase::Global(r), i, 1, -1));
            let c = f.load(AddrExpr::indexed(MemBase::Global(r), i, 1, 1));
            let s = f.bin(BinOp::Add, a.into(), c.into());
            let avg = f.bin(BinOp::Div, s.into(), Operand::ImmI(2));
            f.store(AddrExpr::indexed(MemBase::Global(v), i, 1, 0), avg.into());
            let d = f.bin(BinOp::Sub, avg.into(), a.into());
            let ad = f.un(UnOp::Abs, d.into());
            f.bin_to(acc, BinOp::Add, acc.into(), ad.into());
            emit_cold_diag(f, acc, 1 << 40); // solver divergence, never hit
        });
        f.store(AddrExpr::global(res, 0), acc.into());
        f.ret(Some(acc.into()));
    });
    (mb.finish(), entry)
}

/// 173.applu — SSOR-style sweep: streaming lower/upper relaxation into a
/// separate buffer plus one constant-address norm accumulator updated in
/// place (a single cheap memory checkpoint).
pub fn build_applu() -> (Module, FuncId) {
    const N: usize = 128;
    let mut mb = ModuleBuilder::new("173.applu");
    let a = mb.global_init("a", N as u32, float_init(173, N));
    let b = mb.global_init("b", N as u32, float_init(174, N));
    let x = mb.global("x", N as u32);
    let norm = mb.global("norm", 1);
    let entry = mb.function("ssor", 1, |f| {
        let n = f.param(0);
        let hi = f.bin(BinOp::Sub, n.into(), Operand::ImmI(1));
        // Unrolled 2× (like -O3), with a 5-point update per element: the
        // lone WAR is the constant-address norm accumulator.
        f.for_range_by(Operand::ImmI(1), hi.into(), 2, |f, i| {
            let mut acc: Option<encore_ir::Reg> = None;
            for u in 0..2i64 {
                let ai = f.load(AddrExpr::indexed(MemBase::Global(a), i, 1, u));
                let al = f.load(AddrExpr::indexed(MemBase::Global(a), i, 1, u - 1));
                let au_ = f.load(AddrExpr::indexed(MemBase::Global(a), i, 1, u + 1));
                let bl = f.load(AddrExpr::indexed(MemBase::Global(b), i, 1, u - 1));
                let bu = f.load(AddrExpr::indexed(MemBase::Global(b), i, 1, u + 1));
                let s = f.bin(BinOp::Add, bl.into(), bu.into());
                let neigh = f.bin(BinOp::Add, al.into(), au_.into());
                let t0 = f.bin(BinOp::Mul, ai.into(), Operand::ImmI(5));
                let t1 = f.bin(BinOp::Sub, t0.into(), s.into());
                let t2 = f.bin(BinOp::Sub, t1.into(), neigh.into());
                let relaxed = f.bin(BinOp::Div, t2.into(), Operand::ImmI(2));
                f.store(AddrExpr::indexed(MemBase::Global(x), i, 1, u), relaxed.into());
                let av = f.un(UnOp::Abs, relaxed.into());
                acc = Some(match acc {
                    None => av,
                    Some(prev) => f.bin(BinOp::Add, prev.into(), av.into()),
                });
            }
            // In-place norm update: the lone WAR (constant address).
            let nv = f.load(AddrExpr::global(norm, 0));
            let nv2 = f.bin(BinOp::Add, nv.into(), acc.expect("accumulated").into());
            f.store(AddrExpr::global(norm, 0), nv2.into());
        });
        let out = f.load(AddrExpr::global(norm, 0));
        f.ret(Some(out.into()));
    });
    (mb.finish(), entry)
}

/// 177.mesa — vertex transform + depth test: streaming matrix transform
/// of a vertex array, then an in-place `zbuf[i] = min(zbuf[i], z)` depth
/// update — a WAR on a *dynamic* index executed every iteration, which
/// makes full protection blow the overhead budget (mesa is one of the
/// paper's budget-limited workloads).
pub fn build_mesa() -> (Module, FuncId) {
    const N: usize = 96;
    let mut mb = ModuleBuilder::new("177.mesa");
    // Mesa-style vertex *arena*: input vertices occupy cells [0, 3N), the
    // transformed output [3N, 6N) of the same allocation — the classic C
    // idiom a conservative static alias analysis cannot separate (every
    // output store *may* alias every input load), but that dynamic
    // memory profiling proves disjoint (the paper's §5.3 story).
    const OUT_BASE: i64 = 3 * N as i64;
    let mut arena_init = float_init(177, 3 * N);
    arena_init.resize(6 * N, 0);
    let varena = mb.global_init("vertex_arena", (6 * N) as u32, arena_init);
    let mat = mb.global_init("mat", 9, vec![2, 0, 1, 0, 2, 0, 1, 0, 2]);
    let zbuf = mb.global_init("zbuf", N as u32, vec![100_000; N]);
    let entry = mb.function("transform", 1, |f| {
        let n = f.param(0);
        f.for_range(Operand::ImmI(0), n.into(), |f, i| {
            let base = f.bin(BinOp::Mul, i.into(), Operand::ImmI(3));
            let vx = f.load(AddrExpr::indexed(MemBase::Global(varena), base, 1, 0));
            let vy = f.load(AddrExpr::indexed(MemBase::Global(varena), base, 1, 1));
            let vz = f.load(AddrExpr::indexed(MemBase::Global(varena), base, 1, 2));
            // Row-major 3x3 multiply with constant matrix loads.
            let mut outs = Vec::new();
            for row in 0..3i64 {
                let m0 = f.load(AddrExpr::global(mat, row * 3));
                let m1 = f.load(AddrExpr::global(mat, row * 3 + 1));
                let m2 = f.load(AddrExpr::global(mat, row * 3 + 2));
                let p0 = f.bin(BinOp::Mul, m0.into(), vx.into());
                let p1 = f.bin(BinOp::Mul, m1.into(), vy.into());
                let p2 = f.bin(BinOp::Mul, m2.into(), vz.into());
                let s0 = f.bin(BinOp::Add, p0.into(), p1.into());
                let s1 = f.bin(BinOp::Add, s0.into(), p2.into());
                f.store(
                    AddrExpr::indexed(MemBase::Global(varena), base, 1, OUT_BASE + row),
                    s1.into(),
                );
                outs.push(s1);
            }
            // Depth test: in-place min on a dynamic index.
            let z = outs[2];
            let old = f.load(AddrExpr::indexed(MemBase::Global(zbuf), i, 1, 0));
            let mn = f.bin(BinOp::Min, old.into(), z.into());
            emit_cold_diag(f, mn, 1 << 40); // depth-range assert, never hit
            f.store(AddrExpr::indexed(MemBase::Global(zbuf), i, 1, 0), mn.into());
        });
        let z0 = f.load(AddrExpr::global(zbuf, 0));
        f.ret(Some(z0.into()));
    });
    (mb.finish(), entry)
}

/// 179.art — adaptive-resonance F1 layer: dense read-only dot products
/// into a separate activation array, a register-held winner search, and
/// a narrow in-place weight update restricted to the winning row.
pub fn build_art() -> (Module, FuncId) {
    const NEURONS: i64 = 16;
    const K: i64 = 24;
    let mut mb = ModuleBuilder::new("179.art");
    let w = mb.global_init("weights", (NEURONS * K) as u32, float_init(179, (NEURONS * K) as usize));
    let input = mb.global_init("input", K as u32, float_init(180, K as usize));
    let act = mb.global("act", NEURONS as u32);
    let entry = mb.function("f1_layer", 1, |f| {
        let rounds = f.param(0);
        let winner = f.mov(Operand::ImmI(0));
        f.for_range(Operand::ImmI(0), rounds.into(), |f, _round| {
            // Dot products (pure streaming), unrolled 4× like -O3 output
            // so per-iteration instrumentation amortizes realistically.
            f.for_range(Operand::ImmI(0), Operand::ImmI(NEURONS), |f, j| {
                let net = f.mov(Operand::ImmI(0));
                let row = f.bin(BinOp::Mul, j.into(), Operand::ImmI(K));
                f.for_range_by(Operand::ImmI(0), Operand::ImmI(K), 4, |f, k| {
                    let base = f.bin(BinOp::Add, row.into(), k.into());
                    for u in 0..4i64 {
                        let wv = f.load(AddrExpr::indexed(MemBase::Global(w), base, 1, u));
                        let iv = f.load(AddrExpr::indexed(MemBase::Global(input), k, 1, u));
                        let p = f.bin(BinOp::Mul, wv.into(), iv.into());
                        f.bin_to(net, BinOp::Add, net.into(), p.into());
                    }
                });
                f.store(AddrExpr::indexed(MemBase::Global(act), j, 1, 0), net.into());
            });
            // Winner search in registers.
            let bestv = f.mov(Operand::ImmI(i64::MIN));
            f.mov_to(winner, Operand::ImmI(0));
            f.for_range(Operand::ImmI(0), Operand::ImmI(NEURONS), |f, j| {
                let av = f.load(AddrExpr::indexed(MemBase::Global(act), j, 1, 0));
                let better = f.bin(BinOp::Lt, bestv.into(), av.into());
                f.if_then(better.into(), |f| {
                    f.mov_to(bestv, av.into());
                    f.mov_to(winner, j.into());
                });
            });
            emit_cold_diag(f, bestv, 1 << 40); // saturated activation, never hit
            // Narrow weight update on the winner row (in-place WARs).
            let row = f.bin(BinOp::Mul, winner.into(), Operand::ImmI(K));
            f.for_range(Operand::ImmI(0), Operand::ImmI(K), |f, k| {
                let idx = f.bin(BinOp::Add, row.into(), k.into());
                let wv = f.load(AddrExpr::indexed(MemBase::Global(w), idx, 1, 0));
                let iv = f.load(AddrExpr::indexed(MemBase::Global(input), k, 1, 0));
                let s = f.bin(BinOp::Add, wv.into(), iv.into());
                let upd = f.bin(BinOp::Div, s.into(), Operand::ImmI(2));
                f.store(AddrExpr::indexed(MemBase::Global(w), idx, 1, 0), upd.into());
            });
        });
        f.ret(Some(winner.into()));
    });
    (mb.finish(), entry)
}

/// 183.equake — sparse matrix–vector product: CSR-style streaming reads
/// with writes to a distinct result vector and a single constant-address
/// residual WAR.
pub fn build_equake() -> (Module, FuncId) {
    const ROWS: i64 = 48;
    const NNZ_PER_ROW: i64 = 4;
    let mut mb = ModuleBuilder::new("183.equake");
    let nnz = (ROWS * NNZ_PER_ROW) as usize;
    // FEM-style arena: matrix values at [0, nnz), the solution vector at
    // [nnz, nnz+ROWS), the result at [nnz+ROWS, nnz+2·ROWS). The result
    // stores only *may* alias the value/vector loads statically; dynamic
    // profiling (and the optimistic bound) prove them disjoint.
    const X_BASE: i64 = ROWS * NNZ_PER_ROW;
    const Y_BASE: i64 = X_BASE + ROWS;
    let cols = mb.global_init("cols", nnz as u32, lcg_data(183, nnz, ROWS));
    let mut arena_init = float_init(184, nnz);
    arena_init.extend(float_init(185, ROWS as usize));
    arena_init.resize((Y_BASE + ROWS) as usize, 0);
    let fem = mb.global_init("fem_arena", (Y_BASE + ROWS) as u32, arena_init);
    let resid = mb.global("resid", 1);
    let entry = mb.function("spmv", 1, |f| {
        let sweeps = f.param(0);
        f.for_range(Operand::ImmI(0), sweeps.into(), |f, _s| {
            f.for_range(Operand::ImmI(0), Operand::ImmI(ROWS), |f, row| {
                let acc = f.mov(Operand::ImmI(0));
                let base = f.bin(BinOp::Mul, row.into(), Operand::ImmI(NNZ_PER_ROW));
                f.for_range(Operand::ImmI(0), Operand::ImmI(NNZ_PER_ROW), |f, k| {
                    let idx = f.bin(BinOp::Add, base.into(), k.into());
                    let c = f.load(AddrExpr::indexed(MemBase::Global(cols), idx, 1, 0));
                    let v = f.load(AddrExpr::indexed(MemBase::Global(fem), idx, 1, 0));
                    let xv = f.load(AddrExpr::indexed(MemBase::Global(fem), c, 1, X_BASE));
                    let p = f.bin(BinOp::Mul, v.into(), xv.into());
                    f.bin_to(acc, BinOp::Add, acc.into(), p.into());
                });
                f.store(AddrExpr::indexed(MemBase::Global(fem), row, 1, Y_BASE), acc.into());
                emit_cold_diag(f, acc, 1 << 40); // overflow guard, never hit
                // Residual accumulation: the lone WAR.
                let r = f.load(AddrExpr::global(resid, 0));
                let aa = f.un(UnOp::Abs, acc.into());
                let r2 = f.bin(BinOp::Add, r.into(), aa.into());
                f.store(AddrExpr::global(resid, 0), r2.into());
            });
        });
        let out = f.load(AddrExpr::global(resid, 0));
        f.ret(Some(out.into()));
    });
    (mb.finish(), entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::verify_module;

    #[test]
    fn all_fp_kernels_verify() {
        for (m, entry) in [
            build_mgrid(),
            build_applu(),
            build_mesa(),
            build_art(),
            build_equake(),
        ] {
            verify_module(&m).unwrap_or_else(|e| panic!("{}: {:?}", m.name, e));
            assert_eq!(m.func(entry).param_count, 1);
        }
    }

    #[test]
    fn mgrid_has_no_store_to_input_buffer() {
        // The smoother must stream u -> r -> v (no in-place updates).
        let (m, entry) = build_mgrid();
        let u = encore_ir::GlobalId::new(0);
        let stores_to_u = m.func(entry).iter_insts().any(|(_, i)| {
            i.store_addr()
                .map(|a| a.base == MemBase::Global(u))
                .unwrap_or(false)
        });
        assert!(!stores_to_u);
    }
}
