//! Seeded random-IR workload fuzzer.
//!
//! Generates arbitrary — but always *verifiable, terminating and
//! trap-free* — programs for differential testing of the simulator's
//! fault-injection engine, where 23 hand-written kernels cannot give
//! confidence but a few thousand machine-written ones can. The design
//! extends the statement-tree generator the integration tests have used
//! since PR 2 with everything the divergence splice's proof obligations
//! touch: aliased global/slot/heap access, pointer-based stores the
//! static alias analysis cannot see through, branchy CFGs, extern
//! output (the SDC certification channel) and data-dependent loops.
//!
//! # Generator grammar
//!
//! A program is a statement tree over a register pool:
//!
//! ```text
//! prog  := stmt+                                (entry arg ∈ [1, 8])
//! stmt  := arith | select | print               (register data flow)
//!        | loadg | storeg | loadidx | storeidx  (global, const/masked index)
//!        | loadslot | storeslot                 (stack slot, const index)
//!        | loadheap | storeheap                 (heap object, masked index)
//!        | loadptr | storeptr                   (lea'd pointer, masked index)
//!        | if cond { stmt* } else { stmt* }     (branch on pool register)
//!        | for trip≤4 { stmt* }                 (constant-trip loop)
//!        | while fuel≤6 ∧ data-cond { stmt* }   (fuel-bounded loop)
//! ```
//!
//! # Termination and safety argument
//!
//! Every generated module passes [`encore_ir::verify`] and its golden
//! run completes within a statically bounded fuel:
//!
//! * **No trapping arithmetic.** The IR defines `Div`/`Rem` by zero as
//!   0 and masks shift amounts, so arithmetic cannot trap.
//! * **No out-of-bounds access.** Constant offsets are drawn within
//!   the object; dynamic indices are masked with
//!   `FunctionBuilder::bounded_index` against power-of-two object
//!   sizes before every use.
//! * **Bounded loops, no recursion.** `for` trips are constants ≤ 4;
//!   every `while` decrements an explicit fuel register starting ≤ 6
//!   and conjoins `fuel > 0` into its continuation condition. With
//!   nesting depth ≤ 3, one statement executes at most `6³` times.
//!
//! # Stream discipline
//!
//! [`program_for`]`(seed, index)` derives case `index` from
//! `SplitMix64::for_index(seed, index)` — the same (seed, index)
//! addressability the SFI campaign uses for fault plans, so any fuzz
//! case regenerates from two integers, independent of thread count or
//! iteration order. Shrinking ([`shrink_program`]) enumerates
//! structurally smaller programs, greediest first, for the property
//! harness in `tests/common/prop.rs`.

use crate::util::lcg_data;
use encore_ir::{
    AddrExpr, BinOp, ExtEffect, FuncId, FunctionBuilder, GlobalId, MemBase, Module,
    ModuleBuilder, Operand, Reg, SlotId,
};
use encore_sim::rng::{Rng, SplitMix64};

/// Globals every generated module declares.
pub const GLOBALS: usize = 3;
/// Cells per global (power of two: dynamic indices are masked).
pub const CELLS: i64 = 16;
/// Cells in the entry function's stack slot.
pub const SLOT_CELLS: i64 = 8;
/// Cells in the entry function's heap allocation (power of two).
pub const HEAP_CELLS: i64 = 8;
/// Maximum statement-tree nesting depth.
pub const MAX_DEPTH: usize = 3;

/// One statement of a generated program. Indices (`lhs`, `src`, `cond`,
/// `idx`) select from the register pool modulo its length; `g` selects
/// a global modulo [`GLOBALS`]; offsets are taken modulo the target
/// object's size.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FuzzStmt {
    /// `pool += op(pool[lhs], rhs)` over the integer op table.
    Arith {
        /// Index into the op table.
        op: u8,
        /// Pool index of the left operand.
        lhs: u8,
        /// Immediate right operand.
        rhs: i64,
    },
    /// `pool += pool[cond] ? pool[lhs] : pool[rhs]` via a diamond.
    Select {
        /// Pool index of the condition.
        cond: u8,
        /// Pool index of the then-value.
        lhs: u8,
        /// Pool index of the else-value.
        rhs: u8,
    },
    /// Load a constant global cell into the pool.
    LoadG {
        /// Global selector.
        g: u8,
        /// Constant cell offset.
        off: u8,
    },
    /// Store a pool register to a constant global cell.
    StoreG {
        /// Global selector.
        g: u8,
        /// Constant cell offset.
        off: u8,
        /// Pool index of the stored value.
        src: u8,
    },
    /// Load through a masked dynamic index into a global.
    LoadIdx {
        /// Global selector.
        g: u8,
        /// Pool index of the raw index value.
        idx: u8,
    },
    /// Store through a masked dynamic index into a global.
    StoreIdx {
        /// Global selector.
        g: u8,
        /// Pool index of the raw index value.
        idx: u8,
        /// Pool index of the stored value.
        src: u8,
    },
    /// Load a constant stack-slot cell.
    LoadSlot {
        /// Constant cell offset.
        off: u8,
    },
    /// Store a pool register to a constant stack-slot cell.
    StoreSlot {
        /// Constant cell offset.
        off: u8,
        /// Pool index of the stored value.
        src: u8,
    },
    /// Load through a masked dynamic index into the heap object.
    LoadHeap {
        /// Pool index of the raw index value.
        idx: u8,
    },
    /// Store through a masked dynamic index into the heap object.
    StoreHeap {
        /// Pool index of the raw index value.
        idx: u8,
        /// Pool index of the stored value.
        src: u8,
    },
    /// Load a global through a `lea`'d pointer register — aliases
    /// `LoadG`/`StoreG` on the same global, but only dynamically.
    LoadPtr {
        /// Global selector.
        g: u8,
        /// Pool index of the raw index value.
        idx: u8,
    },
    /// Store a global through a `lea`'d pointer register.
    StorePtr {
        /// Global selector.
        g: u8,
        /// Pool index of the raw index value.
        idx: u8,
        /// Pool index of the stored value.
        src: u8,
    },
    /// Append a pool register to the extern output channel
    /// (`print_i64`, the observable the SDC splice rule certifies).
    Print {
        /// Pool index of the printed value.
        src: u8,
    },
    /// Two-way branch on a pool register.
    If {
        /// Pool index of the condition.
        cond: u8,
        /// Then-arm statements.
        then_s: Vec<FuzzStmt>,
        /// Else-arm statements.
        else_s: Vec<FuzzStmt>,
    },
    /// Constant-trip loop (1–4 iterations).
    For {
        /// Trip count.
        trip: u8,
        /// Body statements.
        body: Vec<FuzzStmt>,
    },
    /// Data-dependent loop bounded by an explicit fuel register: runs
    /// while `fuel > 0 ∧ (pool[cond] & 3) != 3`, decrementing fuel
    /// each iteration.
    While {
        /// Initial fuel (1–6).
        fuel: u8,
        /// Pool index of the data condition.
        cond: u8,
        /// Body statements.
        body: Vec<FuzzStmt>,
    },
}

/// A generated program: its statements plus the entry argument both
/// the profiling run and the campaign golden run use.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuzzProgram {
    /// Entry argument (seeds the register pool).
    pub arg: i64,
    /// Top-level statements.
    pub stmts: Vec<FuzzStmt>,
}

/// Integer op table for [`FuzzStmt::Arith`] — every entry is total
/// (wrapping arithmetic, division by zero defined as 0, shifts masked).
const OPS: [BinOp; 12] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Lt,
    BinOp::Ne,
];

/// Generates the program for case `index` of the stream keyed by
/// `seed` — a pure function of its two arguments.
pub fn program_for(seed: u64, index: u64) -> FuzzProgram {
    let mut rng = SplitMix64::for_index(seed, index);
    gen_program(&mut rng)
}

/// Generates one program from an arbitrary random source.
pub fn gen_program(rng: &mut impl Rng) -> FuzzProgram {
    FuzzProgram {
        arg: rng.gen_i64(1, 9),
        stmts: gen_stmt_list(rng, MAX_DEPTH, 2, 10),
    }
}

fn gen_stmt(rng: &mut impl Rng, depth: usize) -> FuzzStmt {
    // At positive depth, one in four statements nests.
    if depth > 0 && rng.gen_below(4) == 0 {
        return match rng.gen_below(3) {
            0 => FuzzStmt::If {
                cond: rng.gen_usize(16) as u8,
                then_s: gen_stmt_list(rng, depth - 1, 0, 4),
                else_s: gen_stmt_list(rng, depth - 1, 0, 4),
            },
            1 => FuzzStmt::For {
                trip: rng.gen_range_inclusive(1, 4) as u8,
                body: gen_stmt_list(rng, depth - 1, 1, 4),
            },
            _ => FuzzStmt::While {
                fuel: rng.gen_range_inclusive(1, 6) as u8,
                cond: rng.gen_usize(16) as u8,
                body: gen_stmt_list(rng, depth - 1, 1, 4),
            },
        };
    }
    let g = rng.gen_usize(GLOBALS) as u8;
    match rng.gen_below(16) {
        0 | 1 => FuzzStmt::Arith {
            op: rng.gen_usize(OPS.len()) as u8,
            lhs: rng.gen_usize(16) as u8,
            rhs: rng.gen_i64(-4, 17),
        },
        2 => FuzzStmt::Select {
            cond: rng.gen_usize(16) as u8,
            lhs: rng.gen_usize(16) as u8,
            rhs: rng.gen_usize(16) as u8,
        },
        3 | 4 => FuzzStmt::LoadG { g, off: rng.gen_usize(CELLS as usize) as u8 },
        5 | 6 => FuzzStmt::StoreG {
            g,
            off: rng.gen_usize(CELLS as usize) as u8,
            src: rng.gen_usize(16) as u8,
        },
        7 => FuzzStmt::LoadIdx { g, idx: rng.gen_usize(16) as u8 },
        8 => FuzzStmt::StoreIdx {
            g,
            idx: rng.gen_usize(16) as u8,
            src: rng.gen_usize(16) as u8,
        },
        9 => FuzzStmt::LoadSlot { off: rng.gen_usize(SLOT_CELLS as usize) as u8 },
        10 => FuzzStmt::StoreSlot {
            off: rng.gen_usize(SLOT_CELLS as usize) as u8,
            src: rng.gen_usize(16) as u8,
        },
        11 => FuzzStmt::LoadHeap { idx: rng.gen_usize(16) as u8 },
        12 => FuzzStmt::StoreHeap {
            idx: rng.gen_usize(16) as u8,
            src: rng.gen_usize(16) as u8,
        },
        13 => FuzzStmt::LoadPtr { g, idx: rng.gen_usize(16) as u8 },
        14 => FuzzStmt::StorePtr {
            g,
            idx: rng.gen_usize(16) as u8,
            src: rng.gen_usize(16) as u8,
        },
        _ => FuzzStmt::Print { src: rng.gen_usize(16) as u8 },
    }
}

fn gen_stmt_list(rng: &mut impl Rng, depth: usize, lo: usize, hi: usize) -> Vec<FuzzStmt> {
    let len = lo + rng.gen_usize(hi - lo);
    (0..len).map(|_| gen_stmt(rng, depth)).collect()
}

/// Emission context: the objects every statement may address.
struct Ctx {
    globals: Vec<GlobalId>,
    slot: SlotId,
    heap_ptr: Reg,
    global_ptrs: Vec<Reg>,
}

fn emit(f: &mut FunctionBuilder<'_>, pool: &mut Vec<Reg>, stmts: &[FuzzStmt], ctx: &Ctx) {
    for s in stmts {
        let pick = |pool: &[Reg], i: u8| pool[i as usize % pool.len()];
        match s {
            FuzzStmt::Arith { op, lhs, rhs } => {
                let a = pick(pool, *lhs);
                let r = f.bin(OPS[*op as usize % OPS.len()], a.into(), Operand::ImmI(*rhs));
                pool.push(r);
            }
            FuzzStmt::Select { cond, lhs, rhs } => {
                let c = pick(pool, *cond);
                let a = pick(pool, *lhs);
                let b = pick(pool, *rhs);
                let r = f.select(c.into(), a.into(), b.into());
                pool.push(r);
            }
            FuzzStmt::LoadG { g, off } => {
                let gid = ctx.globals[*g as usize % GLOBALS];
                let r = f.load(AddrExpr::global(gid, *off as i64 % CELLS));
                pool.push(r);
            }
            FuzzStmt::StoreG { g, off, src } => {
                let gid = ctx.globals[*g as usize % GLOBALS];
                let v = pick(pool, *src);
                f.store(AddrExpr::global(gid, *off as i64 % CELLS), v.into());
            }
            FuzzStmt::LoadIdx { g, idx } => {
                let gid = ctx.globals[*g as usize % GLOBALS];
                let masked = f.bounded_index(pick(pool, *idx).into(), CELLS);
                let r = f.load(AddrExpr::indexed(MemBase::Global(gid), masked, 1, 0));
                pool.push(r);
            }
            FuzzStmt::StoreIdx { g, idx, src } => {
                let gid = ctx.globals[*g as usize % GLOBALS];
                let masked = f.bounded_index(pick(pool, *idx).into(), CELLS);
                let v = pick(pool, *src);
                f.store(AddrExpr::indexed(MemBase::Global(gid), masked, 1, 0), v.into());
            }
            FuzzStmt::LoadSlot { off } => {
                let r = f.load(AddrExpr::slot(ctx.slot, *off as i64 % SLOT_CELLS));
                pool.push(r);
            }
            FuzzStmt::StoreSlot { off, src } => {
                let v = pick(pool, *src);
                f.store(AddrExpr::slot(ctx.slot, *off as i64 % SLOT_CELLS), v.into());
            }
            FuzzStmt::LoadHeap { idx } => {
                let masked = f.bounded_index(pick(pool, *idx).into(), HEAP_CELLS);
                let r = f.load(AddrExpr::indexed(MemBase::Reg(ctx.heap_ptr), masked, 1, 0));
                pool.push(r);
            }
            FuzzStmt::StoreHeap { idx, src } => {
                let masked = f.bounded_index(pick(pool, *idx).into(), HEAP_CELLS);
                let v = pick(pool, *src);
                f.store(
                    AddrExpr::indexed(MemBase::Reg(ctx.heap_ptr), masked, 1, 0),
                    v.into(),
                );
            }
            FuzzStmt::LoadPtr { g, idx } => {
                let ptr = ctx.global_ptrs[*g as usize % GLOBALS];
                let masked = f.bounded_index(pick(pool, *idx).into(), CELLS);
                let r = f.load(AddrExpr::indexed(MemBase::Reg(ptr), masked, 1, 0));
                pool.push(r);
            }
            FuzzStmt::StorePtr { g, idx, src } => {
                let ptr = ctx.global_ptrs[*g as usize % GLOBALS];
                let masked = f.bounded_index(pick(pool, *idx).into(), CELLS);
                let v = pick(pool, *src);
                f.store(AddrExpr::indexed(MemBase::Reg(ptr), masked, 1, 0), v.into());
            }
            FuzzStmt::Print { src } => {
                let v = pick(pool, *src);
                f.call_ext_void("print_i64", &[v.into()], ExtEffect::Opaque);
            }
            FuzzStmt::If { cond, then_s, else_s } => {
                let c = pick(pool, *cond);
                // Arms may define registers, but the pool must stay
                // consistent at the join: snapshot and restore.
                let mut pool_then = pool.clone();
                let mut pool_else = pool.clone();
                f.if_else(
                    c.into(),
                    |f| emit(f, &mut pool_then, then_s, ctx),
                    |f| emit(f, &mut pool_else, else_s, ctx),
                );
            }
            FuzzStmt::For { trip, body } => {
                let mut pool_body = pool.clone();
                f.for_range(Operand::ImmI(0), Operand::ImmI(*trip as i64), |f, i| {
                    pool_body.push(i);
                    emit(f, &mut pool_body, body, ctx);
                });
            }
            FuzzStmt::While { fuel, cond, body } => {
                let c = pick(pool, *cond);
                let fuel_reg = f.mov(Operand::ImmI(*fuel as i64));
                let mut pool_body = pool.clone();
                f.while_loop(
                    |f| {
                        let have = f.bin(BinOp::Lt, Operand::ImmI(0), fuel_reg.into());
                        let m = f.bin(BinOp::And, c.into(), Operand::ImmI(3));
                        let live = f.bin(BinOp::Ne, m.into(), Operand::ImmI(3));
                        Operand::Reg(f.bin(BinOp::And, have.into(), live.into()))
                    },
                    |f| {
                        emit(f, &mut pool_body, body, ctx);
                        f.bin_to(fuel_reg, BinOp::Sub, fuel_reg.into(), Operand::ImmI(1));
                    },
                );
            }
        }
    }
}

/// Materializes a program as a verified module plus its entry function.
///
/// # Panics
///
/// Panics if the emitted module fails verification — by construction it
/// never does, so a panic here is a fuzzer bug, not a test failure.
pub fn build(prog: &FuzzProgram) -> (Module, FuncId) {
    let mut mb = ModuleBuilder::new("fuzz");
    let globals: Vec<GlobalId> = (0..GLOBALS)
        .map(|g| {
            mb.global_init(
                format!("g{g}"),
                CELLS as u32,
                lcg_data(0xF0_55 + g as u64, CELLS as usize, 64),
            )
        })
        .collect();
    let entry = mb.function("main", 1, |f| {
        let p = f.param(0);
        let seed = f.bin(BinOp::Mul, p.into(), Operand::ImmI(7));
        let slot = f.slot(SLOT_CELLS as u32);
        let heap_ptr = f.alloc(Operand::ImmI(HEAP_CELLS));
        // Pointer aliases of every global, taken once at entry: stores
        // through them are `MemBase::Reg` accesses the static alias
        // analysis must treat as may-aliasing everything.
        let global_ptrs: Vec<Reg> =
            globals.iter().map(|&g| f.lea(AddrExpr::global(g, 0))).collect();
        let ctx = Ctx { globals: globals.clone(), slot, heap_ptr, global_ptrs };
        let mut pool = vec![p, seed];
        emit(f, &mut pool, &prog.stmts, &ctx);
        let last = *pool.last().expect("nonempty pool");
        f.ret(Some(last.into()));
    });
    let m = mb.finish();
    encore_ir::verify_module(&m).expect("generated module verifies");
    (m, entry)
}

/// Smaller variants of one statement (empty for irreducible leaves).
fn shrink_stmt(s: &FuzzStmt) -> Vec<FuzzStmt> {
    match s {
        FuzzStmt::Arith { op, lhs, rhs } if *rhs != 0 => {
            vec![FuzzStmt::Arith { op: *op, lhs: *lhs, rhs: 0 }]
        }
        FuzzStmt::If { cond, then_s, else_s } => {
            let mut out = Vec::new();
            for t in shrink_list(then_s) {
                out.push(FuzzStmt::If { cond: *cond, then_s: t, else_s: else_s.clone() });
            }
            for e in shrink_list(else_s) {
                out.push(FuzzStmt::If { cond: *cond, then_s: then_s.clone(), else_s: e });
            }
            out
        }
        FuzzStmt::For { trip, body } => {
            let mut out = Vec::new();
            if *trip > 1 {
                out.push(FuzzStmt::For { trip: 1, body: body.clone() });
            }
            for b in shrink_list(body) {
                if !b.is_empty() {
                    out.push(FuzzStmt::For { trip: *trip, body: b });
                }
            }
            out
        }
        FuzzStmt::While { fuel, cond, body } => {
            let mut out = Vec::new();
            if *fuel > 1 {
                out.push(FuzzStmt::While { fuel: 1, cond: *cond, body: body.clone() });
            }
            for b in shrink_list(body) {
                if !b.is_empty() {
                    out.push(FuzzStmt::While { fuel: *fuel, cond: *cond, body: b });
                }
            }
            out
        }
        _ => Vec::new(),
    }
}

/// Structurally smaller statement lists, most aggressive first: drop a
/// statement, splice a nested body up one level, shrink one statement
/// in place.
pub fn shrink_list(stmts: &[FuzzStmt]) -> Vec<Vec<FuzzStmt>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        let mut v = stmts.to_vec();
        v.remove(i);
        out.push(v);
    }
    for i in 0..stmts.len() {
        let inner: Option<Vec<FuzzStmt>> = match &stmts[i] {
            FuzzStmt::If { then_s, else_s, .. } => {
                Some(then_s.iter().chain(else_s.iter()).cloned().collect())
            }
            FuzzStmt::For { body, .. } | FuzzStmt::While { body, .. } => Some(body.clone()),
            _ => None,
        };
        if let Some(inner) = inner {
            let mut v = stmts.to_vec();
            v.splice(i..=i, inner);
            out.push(v);
        }
    }
    for i in 0..stmts.len() {
        for s in shrink_stmt(&stmts[i]) {
            let mut v = stmts.to_vec();
            v[i] = s;
            out.push(v);
        }
    }
    out
}

/// Structurally smaller programs for greedy shrinking: the statement
/// list shrinks first (it carries the structure), then the argument
/// halves toward 1.
pub fn shrink_program(p: &FuzzProgram) -> Vec<FuzzProgram> {
    let mut out: Vec<FuzzProgram> = shrink_list(&p.stmts)
        .into_iter()
        .filter(|s| !s.is_empty())
        .map(|stmts| FuzzProgram { arg: p.arg, stmts })
        .collect();
    if p.arg > 1 {
        out.push(FuzzProgram { arg: p.arg / 2, stmts: p.stmts.clone() });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_sim::{run_function, RunConfig, Value};

    #[test]
    fn generation_is_a_pure_function_of_seed_and_index() {
        for index in 0..16 {
            assert_eq!(program_for(0xF0_22, index), program_for(0xF0_22, index));
        }
        assert_ne!(program_for(0xF0_22, 0), program_for(0xF0_22, 1));
        assert_ne!(program_for(0xF0_22, 0), program_for(0xF0_23, 0));
    }

    #[test]
    fn corpus_verifies_and_terminates() {
        for index in 0..128 {
            let prog = program_for(0xC0_8085, index);
            let (m, entry) = build(&prog); // verifies internally
            let run = run_function(
                &m,
                None,
                entry,
                &[Value::Int(prog.arg)],
                &RunConfig { fuel: 1_000_000, ..Default::default() },
            );
            assert!(run.completed, "case {index} trapped: {:?}\n{prog:?}", run.trap);
        }
    }

    #[test]
    fn corpus_reaches_every_statement_kind() {
        let mut kinds = std::collections::BTreeSet::new();
        fn visit(stmts: &[FuzzStmt], kinds: &mut std::collections::BTreeSet<&'static str>) {
            for s in stmts {
                let (k, nested): (_, &[&[FuzzStmt]]) = match s {
                    FuzzStmt::Arith { .. } => ("arith", &[]),
                    FuzzStmt::Select { .. } => ("select", &[]),
                    FuzzStmt::LoadG { .. } => ("loadg", &[]),
                    FuzzStmt::StoreG { .. } => ("storeg", &[]),
                    FuzzStmt::LoadIdx { .. } => ("loadidx", &[]),
                    FuzzStmt::StoreIdx { .. } => ("storeidx", &[]),
                    FuzzStmt::LoadSlot { .. } => ("loadslot", &[]),
                    FuzzStmt::StoreSlot { .. } => ("storeslot", &[]),
                    FuzzStmt::LoadHeap { .. } => ("loadheap", &[]),
                    FuzzStmt::StoreHeap { .. } => ("storeheap", &[]),
                    FuzzStmt::LoadPtr { .. } => ("loadptr", &[]),
                    FuzzStmt::StorePtr { .. } => ("storeptr", &[]),
                    FuzzStmt::Print { .. } => ("print", &[]),
                    FuzzStmt::If { then_s, else_s, .. } => {
                        visit(then_s, kinds);
                        visit(else_s, kinds);
                        ("if", &[])
                    }
                    FuzzStmt::For { body, .. } => {
                        visit(body, kinds);
                        ("for", &[])
                    }
                    FuzzStmt::While { body, .. } => {
                        visit(body, kinds);
                        ("while", &[])
                    }
                };
                let _ = nested;
                kinds.insert(k);
            }
        }
        for index in 0..256 {
            visit(&program_for(0xC0_4E8, index).stmts, &mut kinds);
        }
        assert_eq!(kinds.len(), 16, "missing statement kinds: saw only {kinds:?}");
    }

    #[test]
    fn shrink_candidates_still_build_and_run() {
        let prog = program_for(0x5_881, 7);
        let candidates = shrink_program(&prog);
        assert!(!candidates.is_empty(), "nested program must shrink");
        for cand in candidates.iter().take(24) {
            let (m, entry) = build(cand);
            let run = run_function(
                &m,
                None,
                entry,
                &[Value::Int(cand.arg)],
                &RunConfig { fuel: 1_000_000, ..Default::default() },
            );
            assert!(run.completed, "shrunk case trapped: {:?}\n{cand:?}", run.trap);
        }
    }
}
