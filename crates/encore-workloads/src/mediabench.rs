//! Mediabench stand-in kernels.
//!
//! Media codes are dominated by block-streaming transforms with small,
//! constant-address codec state — the structure behind the paper's
//! observation that Mediabench spends the most time in Encore-recoverable
//! code: cjpeg/djpeg (DCT/IDCT block transforms), epic/unepic (pyramid
//! filtering within one buffer — a dynamic-offset pattern only the
//! optimistic alias oracle can bless), g721 (ADPCM predictor state),
//! mpeg2 (motion compensation/estimation), pegwit (chained block cipher
//! state) and rawcaudio/rawdaudio (tiny two-cell ADPCM state).

use crate::util::{emit_cold_diag, lcg_data};
use encore_ir::{AddrExpr, BinOp, FuncId, MemBase, Module, ModuleBuilder, Operand, UnOp};

/// cjpeg — forward block transform with in-register quantization into a
/// separate coefficient buffer (idempotent streaming), plus the JPEG
/// DC-prediction chain: one constant-address state cell updated per
/// block (a single cheap checkpoint).
pub fn build_cjpeg() -> (Module, FuncId) {
    const BLOCKS: usize = 24;
    let mut mb = ModuleBuilder::new("cjpeg");
    let img = mb.global_init("img", (BLOCKS * 8) as u32, lcg_data(11, BLOCKS * 8, 256));
    let coef = mb.global("coef", (BLOCKS * 8) as u32);
    let quant = mb.global_init("quant", 8, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    let dc_pred = mb.global("dc_pred", 1);
    let entry = mb.function("encode", 1, |f| {
        let nblocks = f.param(0);
        f.for_range(Operand::ImmI(0), nblocks.into(), |f, b| {
            let base = f.bin(BinOp::Mul, b.into(), Operand::ImmI(8));
            // Load 8 samples, butterfly, quantize in registers, store.
            let mut vals = Vec::with_capacity(8);
            for k in 0..8i64 {
                vals.push(f.load(AddrExpr::indexed(MemBase::Global(img), base, 1, k)));
            }
            let mut out = [None; 8];
            for k in 0..4usize {
                let a = vals[k];
                let bb = vals[7 - k];
                let s = f.bin(BinOp::Add, a.into(), bb.into());
                let d = f.bin(BinOp::Sub, a.into(), bb.into());
                out[k] = Some(s);
                out[7 - k] = Some(d);
            }
            let mut dc = None;
            for (k, v) in out.iter().enumerate() {
                let v = v.expect("filled");
                let q = f.load(AddrExpr::global(quant, k as i64));
                let quantized = f.bin(BinOp::Div, v.into(), q.into());
                f.store(
                    AddrExpr::indexed(MemBase::Global(coef), base, 1, k as i64),
                    quantized.into(),
                );
                if k == 0 {
                    dc = Some(quantized);
                }
            }
            // DC prediction: diff against previous block's DC (the lone
            // constant-address WAR of the encoder).
            let prev = f.load(AddrExpr::global(dc_pred, 0));
            emit_cold_diag(f, prev, 1 << 40); // DC overflow, never hit
            let dc = dc.expect("dc coefficient");
            let diff = f.bin(BinOp::Sub, dc.into(), prev.into());
            let _ = diff;
            f.store(AddrExpr::global(dc_pred, 0), dc.into());
        });
        let first = f.load(AddrExpr::global(coef, 0));
        f.ret(Some(first.into()));
    });
    (mb.finish(), entry)
}

/// djpeg — dequantize + inverse transform into a separate pixel buffer.
pub fn build_djpeg() -> (Module, FuncId) {
    const BLOCKS: usize = 24;
    let mut mb = ModuleBuilder::new("djpeg");
    let coef = mb.global_init("coef", (BLOCKS * 8) as u32, lcg_data(12, BLOCKS * 8, 128));
    let tmp = mb.global("dq", (BLOCKS * 8) as u32);
    let pix = mb.global("pix", (BLOCKS * 8) as u32);
    let quant = mb.global_init("quant", 8, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    let entry = mb.function("decode", 1, |f| {
        let nblocks = f.param(0);
        f.for_range(Operand::ImmI(0), nblocks.into(), |f, b| {
            let base = f.bin(BinOp::Mul, b.into(), Operand::ImmI(8));
            // Dequantize in registers; stage the dequantized values for
            // downstream consumers (write-only traffic to `dq`, never
            // re-read — still idempotent).
            let mut vals = Vec::with_capacity(8);
            for k in 0..8i64 {
                let c = f.load(AddrExpr::indexed(MemBase::Global(coef), base, 1, k));
                let q = f.load(AddrExpr::global(quant, k));
                let d = f.bin(BinOp::Mul, c.into(), q.into());
                f.store(AddrExpr::indexed(MemBase::Global(tmp), base, 1, k), d.into());
                vals.push(d);
            }
            emit_cold_diag(f, vals[0], 1 << 40); // corrupt marker, never hit
            // Inverse butterfly in registers, clamped pixel store.
            for k in 0..4usize {
                let a = vals[k];
                let bb = vals[7 - k];
                let s = f.bin(BinOp::Add, a.into(), bb.into());
                let d = f.bin(BinOp::Sub, a.into(), bb.into());
                let s2 = f.bin(BinOp::Shr, s.into(), Operand::ImmI(1));
                let d2 = f.bin(BinOp::Shr, d.into(), Operand::ImmI(1));
                f.store(
                    AddrExpr::indexed(MemBase::Global(pix), base, 1, k as i64),
                    s2.into(),
                );
                f.store(
                    AddrExpr::indexed(MemBase::Global(pix), base, 1, (7 - k) as i64),
                    d2.into(),
                );
            }
        });
        let first = f.load(AddrExpr::global(pix, 0));
        f.ret(Some(first.into()));
    });
    (mb.finish(), entry)
}

/// epic — image-pyramid analysis: each level filters the previous level
/// into a different offset of the *same* pyramid buffer. The offsets are
/// provably disjoint to a human but dynamic to the conservative alias
/// oracle — the workload that shows Figure 7a's static-vs-optimistic
/// gap.
pub fn build_epic() -> (Module, FuncId) {
    const N: usize = 128;
    let mut mb = ModuleBuilder::new("epic");
    let pyr = mb.global_init("pyramid", (2 * N) as u32, lcg_data(13, 2 * N, 256));
    let details = mb.global("details", (2 * N) as u32);
    let entry = mb.function("analyze", 1, |f| {
        let n = f.param(0);
        let src_off = f.mov(Operand::ImmI(0));
        let level_len = f.mov(n.into());
        f.while_loop(
            |f| Operand::Reg(f.bin(BinOp::Lt, Operand::ImmI(2), level_len.into())),
            |f| {
                let dst_off = f.bin(BinOp::Add, src_off.into(), level_len.into());
                let half = f.bin(BinOp::Shr, level_len.into(), Operand::ImmI(1));
                // Advance the level cursors *before* the filter loop so the
                // loop region clobbers no outer live-ins (the loop reads
                // the snapshot registers src0/dst_off/half).
                let src0 = f.mov(src_off.into());
                f.mov_to(src_off, dst_off.into());
                f.mov_to(level_len, half.into());
                // 3-tap (1,2,1)/4 lowpass into the next pyramid level
                // (the cross-level store only *may* alias the loads — the
                // Figure 7a static/optimistic gap), plus a highpass
                // detail band streamed to its own buffer.
                f.for_range_by(Operand::ImmI(1), half.into(), 2, |f, i| {
                    let i2 = f.bin(BinOp::Mul, i.into(), Operand::ImmI(2));
                    let s0 = f.bin(BinOp::Add, src0.into(), i2.into());
                    let d0 = f.bin(BinOp::Add, dst_off.into(), i.into());
                    for u in 0..2i64 {
                        let a =
                            f.load(AddrExpr::indexed(MemBase::Global(pyr), s0, 1, 2 * u - 1));
                        let b = f.load(AddrExpr::indexed(MemBase::Global(pyr), s0, 1, 2 * u));
                        let c =
                            f.load(AddrExpr::indexed(MemBase::Global(pyr), s0, 1, 2 * u + 1));
                        let b2 = f.bin(BinOp::Mul, b.into(), Operand::ImmI(2));
                        let t0 = f.bin(BinOp::Add, a.into(), b2.into());
                        let t1 = f.bin(BinOp::Add, t0.into(), c.into());
                        let low = f.bin(BinOp::Shr, t1.into(), Operand::ImmI(2));
                        f.store(AddrExpr::indexed(MemBase::Global(pyr), d0, 1, u), low.into());
                        emit_cold_diag(f, low, 1 << 40); // filter overflow, never hit
                        let hp0 = f.bin(BinOp::Sub, b.into(), low.into());
                        let hp1 = f.bin(BinOp::Add, hp0.into(), c.into());
                        let high = f.bin(BinOp::Shr, hp1.into(), Operand::ImmI(1));
                        f.store(
                            AddrExpr::indexed(MemBase::Global(details), d0, 1, u),
                            high.into(),
                        );
                    }
                });
            },
        );
        let top = f.load(AddrExpr::indexed(MemBase::Global(pyr), src_off, 1, 0));
        f.ret(Some(top.into()));
    });
    (mb.finish(), entry)
}

/// unepic — pyramid synthesis: walks the pyramid back down, expanding
/// each level into a separate output image (streaming).
pub fn build_unepic() -> (Module, FuncId) {
    const N: usize = 128;
    let mut mb = ModuleBuilder::new("unepic");
    let pyr = mb.global_init("pyramid", (2 * N) as u32, lcg_data(14, 2 * N, 256));
    let img = mb.global("img", N as u32);
    let entry = mb.function("synthesize", 1, |f| {
        let n = f.param(0);
        let half = f.bin(BinOp::Shr, n.into(), Operand::ImmI(1));
        f.for_range(Operand::ImmI(0), half.into(), |f, i| {
            let s = f.bin(BinOp::Add, n.into(), i.into());
            let coarse = f.load(AddrExpr::indexed(MemBase::Global(pyr), s, 1, 0));
            let i2 = f.bin(BinOp::Mul, i.into(), Operand::ImmI(2));
            let fine = f.load(AddrExpr::indexed(MemBase::Global(pyr), i2, 1, 0));
            // Clamp in registers before the stores (streaming output only).
            let up0 = f.bin(BinOp::Add, coarse.into(), fine.into());
            let up1 = f.bin(BinOp::Max, up0.into(), Operand::ImmI(0));
            let up = f.bin(BinOp::Min, up1.into(), Operand::ImmI(255));
            f.store(AddrExpr::indexed(MemBase::Global(img), i2, 1, 0), up.into());
            let d0 = f.bin(BinOp::Sub, coarse.into(), fine.into());
            let d1 = f.bin(BinOp::Max, d0.into(), Operand::ImmI(0));
            let diff = f.bin(BinOp::Min, d1.into(), Operand::ImmI(255));
            f.store(AddrExpr::indexed(MemBase::Global(img), i2, 1, 1), diff.into());
        });
        // Checksum pass: read-only fold over the reconstruction.
        // (reconstruction-range diagnostic lives in the synth loop)
        let checksum = f.mov(Operand::ImmI(0));
        f.for_range(Operand::ImmI(0), n.into(), |f, i| {
            let v = f.load(AddrExpr::indexed(MemBase::Global(img), i, 1, 0));
            let rot = f.bin(BinOp::Shl, checksum.into(), Operand::ImmI(1));
            let mixed = f.bin(BinOp::Xor, rot.into(), v.into());
            f.mov_to(checksum, mixed.into());
        });
        f.ret(Some(checksum.into()));
    });
    (mb.finish(), entry)
}

/// Shared ADPCM-style codec: per-sample prediction with `state_cells`
/// cells of constant-address predictor state (cheap checkpoints) and a
/// streaming output buffer.
fn build_adpcm(
    name: &str,
    seed: u64,
    state_cells: u32,
    decode: bool,
) -> (Module, FuncId) {
    const N: usize = 256;
    let mut mb = ModuleBuilder::new(name);
    let input = mb.global_init("input", N as u32, lcg_data(seed, N, 512));
    let output = mb.global("output", N as u32);
    let energy = mb.global("energy", N as u32);
    let state = mb.global("state", state_cells);
    let entry = mb.function("codec", 1, |f| {
        let n = f.param(0);
        // Samples 1..n-1 so the FIR taps stay in bounds.
        let hi = f.bin(BinOp::Sub, n.into(), Operand::ImmI(1));
        f.for_range(Operand::ImmI(1), hi.into(), |f, i| {
            let raw = f.load(AddrExpr::indexed(MemBase::Global(input), i, 1, 0));
            // Input conditioning: 3-tap FIR smoothing over the stream
            // (read-only; models the real codecs' filter front-end and
            // keeps the per-sample instruction count realistic).
            let prev = f.load(AddrExpr::indexed(MemBase::Global(input), i, 1, -1));
            let next = f.load(AddrExpr::indexed(MemBase::Global(input), i, 1, 1));
            let w0 = f.bin(BinOp::Mul, raw.into(), Operand::ImmI(2));
            let w1 = f.bin(BinOp::Add, w0.into(), prev.into());
            let w2 = f.bin(BinOp::Add, w1.into(), next.into());
            let smooth = f.bin(BinOp::Shr, w2.into(), Operand::ImmI(2));
            // Companding approximation: fold in a magnitude-scaled term.
            let mag = f.un(UnOp::Abs, smooth.into());
            let scaled = f.bin(BinOp::Shr, mag.into(), Operand::ImmI(3));
            let biased = f.bin(BinOp::Add, smooth.into(), scaled.into());
            let lo = f.bin(BinOp::Max, biased.into(), Operand::ImmI(-32768));
            let sample = f.bin(BinOp::Min, lo.into(), Operand::ImmI(32767));
            emit_cold_diag(f, sample, 1 << 20); // clip warning, never hit
            // Predictor: pred = (state[0]*3 + state[1]) / 4.
            let s0 = f.load(AddrExpr::global(state, 0));
            let s1 = f.load(AddrExpr::global(state, 1));
            let p0 = f.bin(BinOp::Mul, s0.into(), Operand::ImmI(3));
            let p1 = f.bin(BinOp::Add, p0.into(), s1.into());
            let pred = f.bin(BinOp::Div, p1.into(), Operand::ImmI(4));
            let result = if decode {
                // Reconstruct: value = pred + delta, clamped to 16 bits.
                let raw = f.bin(BinOp::Add, pred.into(), sample.into());
                let lo = f.bin(BinOp::Max, raw.into(), Operand::ImmI(-32768));
                f.bin(BinOp::Min, lo.into(), Operand::ImmI(32767))
            } else {
                // Encode: quantize delta = value - pred with a step-size
                // derived from the previous sample magnitude.
                let delta = f.bin(BinOp::Sub, sample.into(), pred.into());
                let mag = f.un(UnOp::Abs, s0.into());
                let step0 = f.bin(BinOp::Shr, mag.into(), Operand::ImmI(4));
                let step = f.bin(BinOp::Max, step0.into(), Operand::ImmI(1));
                f.bin(BinOp::Div, delta.into(), step.into())
            };
            f.store(AddrExpr::indexed(MemBase::Global(output), i, 1, 0), result.into());
            // Side-channel energy metering (streaming writes to a
            // separate buffer; models the codecs' VU/AGC bookkeeping).
            let e0 = f.bin(BinOp::Mul, result.into(), result.into());
            let e1 = f.bin(BinOp::Shr, e0.into(), Operand::ImmI(4));
            let e2 = f.bin(BinOp::Add, e1.into(), Operand::ImmI(1));
            let perr = f.bin(BinOp::Sub, sample.into(), pred.into());
            let aerr = f.un(UnOp::Abs, perr.into());
            let mix0 = f.bin(BinOp::Mul, aerr.into(), Operand::ImmI(3));
            let mix1 = f.bin(BinOp::Add, mix0.into(), e2.into());
            let mix2 = f.bin(BinOp::Shr, mix1.into(), Operand::ImmI(1));
            f.store(AddrExpr::indexed(MemBase::Global(energy), i, 1, 0), mix2.into());
            // State update (constant-address WARs).
            f.store(AddrExpr::global(state, 1), s0.into());
            let newest = if decode { result } else { sample };
            f.store(AddrExpr::global(state, 0), newest.into());
            // Extra predictor taps for the g721 variants.
            for k in 2..state_cells as i64 {
                let prev = f.load(AddrExpr::global(state, k - 1));
                f.store(AddrExpr::global(state, k), prev.into());
            }
        });
        let last = f.load(AddrExpr::global(state, 0));
        f.ret(Some(last.into()));
    });
    (mb.finish(), entry)
}

/// g721encode — ADPCM encoder with a 4-tap predictor.
pub fn build_g721encode() -> (Module, FuncId) {
    build_adpcm("g721encode", 21, 4, false)
}

/// g721decode — ADPCM decoder with a 4-tap predictor.
pub fn build_g721decode() -> (Module, FuncId) {
    build_adpcm("g721decode", 22, 4, true)
}

/// rawcaudio — 2-tap ADPCM encoder (the paper's near-perfect-coverage
/// workload: one tiny constant-address state WAR).
pub fn build_rawcaudio() -> (Module, FuncId) {
    build_adpcm("rawcaudio", 23, 2, false)
}

/// rawdaudio — 2-tap ADPCM decoder.
pub fn build_rawdaudio() -> (Module, FuncId) {
    build_adpcm("rawdaudio", 24, 2, true)
}

/// mpeg2dec — motion compensation: `frame[i] = ref[i + mv] + resid[i]`
/// streaming into a distinct output frame (idempotent even under the
/// conservative oracle).
pub fn build_mpeg2dec() -> (Module, FuncId) {
    const N: usize = 192;
    let mut mb = ModuleBuilder::new("mpeg2dec");
    let reference = mb.global_init("ref", (N + 16) as u32, lcg_data(25, N + 16, 256));
    let resid = mb.global_init("resid", N as u32, lcg_data(26, N, 32));
    let frame = mb.global("frame", N as u32);
    let entry = mb.function("motion_comp", 1, |f| {
        let n = f.param(0);
        f.for_range(Operand::ImmI(0), n.into(), |f, i| {
            // Per-macroblock motion vector, 0..16.
            let blk = f.bin(BinOp::Shr, i.into(), Operand::ImmI(4));
            let mv = f.bin(BinOp::And, blk.into(), Operand::ImmI(15));
            let si = f.bin(BinOp::Add, i.into(), mv.into());
            let rv = f.load(AddrExpr::indexed(MemBase::Global(reference), si, 1, 0));
            let dv = f.load(AddrExpr::indexed(MemBase::Global(resid), i, 1, 0));
            // Half-pel interpolation: average two reference samples.
            let rv2 = f.load(AddrExpr::indexed(MemBase::Global(reference), si, 1, 1));
            let interp0 = f.bin(BinOp::Add, rv.into(), rv2.into());
            let interp = f.bin(BinOp::Shr, interp0.into(), Operand::ImmI(1));
            let s = f.bin(BinOp::Add, interp.into(), dv.into());
            emit_cold_diag(f, s, 1 << 20); // corrupt-stream check, never hit
            let clamped0 = f.bin(BinOp::Max, s.into(), Operand::ImmI(0));
            let clamped = f.bin(BinOp::Min, clamped0.into(), Operand::ImmI(255));
            f.store(AddrExpr::indexed(MemBase::Global(frame), i, 1, 0), clamped.into());
        });
        let first = f.load(AddrExpr::global(frame, 0));
        f.ret(Some(first.into()));
    });
    (mb.finish(), entry)
}

/// mpeg2enc — motion estimation: SAD search over candidate offsets (all
/// reads + register accumulation), writing only the best vector per
/// block — the paper's "instrumented everything without spending the
/// budget" workload.
pub fn build_mpeg2enc() -> (Module, FuncId) {
    const N: usize = 128;
    const BLK: i64 = 16;
    let mut mb = ModuleBuilder::new("mpeg2enc");
    let cur = mb.global_init("cur", N as u32, lcg_data(27, N, 256));
    let reference = mb.global_init("ref", (N + 8) as u32, lcg_data(28, N + 8, 256));
    let mvs = mb.global("mvs", (N as i64 / BLK) as u32);
    let entry = mb.function("motion_est", 1, |f| {
        let nblocks = f.param(0);
        f.for_range(Operand::ImmI(0), nblocks.into(), |f, b| {
            let base = f.bin(BinOp::Mul, b.into(), Operand::ImmI(BLK));
            let best_sad = f.mov(Operand::ImmI(i64::MAX));
            let best_mv = f.mov(Operand::ImmI(0));
            f.for_range(Operand::ImmI(0), Operand::ImmI(8), |f, mv| {
                let sad = f.mov(Operand::ImmI(0));
                f.for_range(Operand::ImmI(0), Operand::ImmI(BLK), |f, k| {
                    let ci = f.bin(BinOp::Add, base.into(), k.into());
                    let cv = f.load(AddrExpr::indexed(MemBase::Global(cur), ci, 1, 0));
                    let ri = f.bin(BinOp::Add, ci.into(), mv.into());
                    let rv = f.load(AddrExpr::indexed(MemBase::Global(reference), ri, 1, 0));
                    let d = f.bin(BinOp::Sub, cv.into(), rv.into());
                    let ad = f.un(UnOp::Abs, d.into());
                    f.bin_to(sad, BinOp::Add, sad.into(), ad.into());
                });
                let better = f.bin(BinOp::Lt, sad.into(), best_sad.into());
                f.if_then(better.into(), |f| {
                    f.mov_to(best_sad, sad.into());
                    f.mov_to(best_mv, mv.into());
                });
            });
            emit_cold_diag(f, best_sad, 1 << 40); // exhausted search, never hit
            f.store(AddrExpr::indexed(MemBase::Global(mvs), b, 1, 0), best_mv.into());
        });
        let first = f.load(AddrExpr::global(mvs, 0));
        f.ret(Some(first.into()));
    });
    (mb.finish(), entry)
}

/// Shared pegwit-style block cipher: per block, mix 4 words with a
/// chained state (constant-address WARs on the chaining variables).
fn build_pegwit(name: &str, seed: u64, decrypt: bool) -> (Module, FuncId) {
    const N: usize = 192;
    let mut mb = ModuleBuilder::new(name);
    let input = mb.global_init("input", N as u32, lcg_data(seed, N, 1 << 30));
    let output = mb.global("output", N as u32);
    let chain = mb.global_init("chain", 2, vec![0x5EED, 0xFACE]);
    let entry = mb.function("cipher", 1, |f| {
        let nblocks = f.param(0);
        f.for_range(Operand::ImmI(0), nblocks.into(), |f, b| {
            let base = f.bin(BinOp::Mul, b.into(), Operand::ImmI(4));
            let c0 = f.load(AddrExpr::global(chain, 0));
            let c1 = f.load(AddrExpr::global(chain, 1));
            let mixed = f.mov(Operand::ImmI(0));
            f.for_range(Operand::ImmI(0), Operand::ImmI(4), |f, k| {
                let idx = f.bin(BinOp::Add, base.into(), k.into());
                let w = f.load(AddrExpr::indexed(MemBase::Global(input), idx, 1, 0));
                let key = f.bin(BinOp::Xor, c0.into(), c1.into());
                let rot = f.bin(BinOp::Shl, key.into(), Operand::ImmI(3));
                let mixer = f.bin(BinOp::Xor, key.into(), rot.into());
                let enc = if decrypt {
                    f.bin(BinOp::Sub, w.into(), mixer.into())
                } else {
                    f.bin(BinOp::Add, w.into(), mixer.into())
                };
                let masked = f.bin(BinOp::And, enc.into(), Operand::ImmI((1 << 30) - 1));
                f.store(AddrExpr::indexed(MemBase::Global(output), idx, 1, 0), masked.into());
                f.bin_to(mixed, BinOp::Xor, mixed.into(), masked.into());
            });
            emit_cold_diag(f, mixed, 1 << 40); // auth failure, never hit
            // Chaining update (WARs on two constant cells).
            f.store(AddrExpr::global(chain, 1), c0.into());
            f.store(AddrExpr::global(chain, 0), mixed.into());
        });
        let c = f.load(AddrExpr::global(chain, 0));
        f.ret(Some(c.into()));
    });
    (mb.finish(), entry)
}

/// pegwitenc — chained block encryption.
pub fn build_pegwitenc() -> (Module, FuncId) {
    build_pegwit("pegwitenc", 31, false)
}

/// pegwitdec — chained block decryption.
pub fn build_pegwitdec() -> (Module, FuncId) {
    build_pegwit("pegwitdec", 32, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::verify_module;

    #[test]
    fn all_media_kernels_verify() {
        for (m, entry) in [
            build_cjpeg(),
            build_djpeg(),
            build_epic(),
            build_unepic(),
            build_g721encode(),
            build_g721decode(),
            build_mpeg2dec(),
            build_mpeg2enc(),
            build_pegwitdec(),
            build_pegwitenc(),
            build_rawcaudio(),
            build_rawdaudio(),
        ] {
            verify_module(&m).unwrap_or_else(|e| panic!("{}: {:?}", m.name, e));
            assert_eq!(m.func(entry).param_count, 1);
        }
    }

    #[test]
    fn adpcm_variants_differ() {
        let (enc, _) = build_rawcaudio();
        let (dec, _) = build_rawdaudio();
        assert_ne!(enc.funcs[0], dec.funcs[0]);
    }
}
