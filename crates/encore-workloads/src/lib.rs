//! # encore-workloads
//!
//! Synthetic stand-ins for the evaluation workloads of the Encore paper
//! (Feng et al., MICRO 2011): six SPEC2000-integer, five
//! SPEC2000-floating-point and twelve Mediabench kernels, written
//! against the [`encore_ir`] builder.
//!
//! The real benchmarks cannot be compiled onto our from-scratch IR, so
//! each kernel reproduces the *memory-update structure* that determines
//! idempotence behavior — hash-table and counter read-modify-writes in
//! the integer codes, buffer-to-buffer streaming in the FP codes,
//! block transforms with small codec state in the media codes — which is
//! the property the paper's figures actually measure. See `DESIGN.md`
//! §2 for the substitution argument.
//!
//! # Examples
//!
//! ```
//! let workloads = encore_workloads::all();
//! assert_eq!(workloads.len(), 23);
//! let gzip = encore_workloads::by_name("164.gzip").unwrap();
//! assert_eq!(gzip.suite, encore_workloads::Suite::Spec2kInt);
//! encore_ir::verify_module(&gzip.module).unwrap();
//! ```

#![warn(missing_docs)]

mod fpbench;
pub mod fuzz;
mod intbench;
mod mediabench;
mod scale;
mod util;

pub use scale::scale_module;
pub use util::lcg_data;

use encore_ir::{FuncId, Module};

/// Benchmark suite grouping (the paper's three column groups).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Suite {
    /// SPEC2000 integer.
    Spec2kInt,
    /// SPEC2000 floating point.
    Spec2kFp,
    /// Mediabench.
    Mediabench,
}

impl Suite {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Suite::Spec2kInt => "SPEC2K-INT",
            Suite::Spec2kFp => "SPEC2K-FP",
            Suite::Mediabench => "MEDIABENCH",
        }
    }

    /// All suites in figure order.
    pub fn all() -> [Suite; 3] {
        [Suite::Spec2kInt, Suite::Spec2kFp, Suite::Mediabench]
    }

    /// Parses a suite selector: the figure label (`"SPEC2K-INT"`, any
    /// case) or its compact spelling (`"spec2kint"`).
    pub fn parse(s: &str) -> Option<Suite> {
        let key: String =
            s.chars().filter(|c| c.is_ascii_alphanumeric()).map(|c| c.to_ascii_lowercase()).collect();
        match key.as_str() {
            "spec2kint" => Some(Suite::Spec2kInt),
            "spec2kfp" => Some(Suite::Spec2kFp),
            "mediabench" => Some(Suite::Mediabench),
            _ => None,
        }
    }
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One benchmark: a module, its entry point and its inputs.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (paper spelling, e.g. `"164.gzip"`).
    pub name: &'static str,
    /// Suite the benchmark belongs to.
    pub suite: Suite,
    /// One-line description of the modeled kernel.
    pub description: &'static str,
    /// The IR module.
    pub module: Module,
    /// Entry function (takes one integer size/iteration parameter).
    pub entry: FuncId,
    /// Entry argument for profiling (training) runs.
    pub train_arg: i64,
    /// Entry argument for evaluation runs.
    pub eval_arg: i64,
    /// Size factor relative to the hand-written kernel (1 = unscaled).
    pub scale: u32,
}

impl Workload {
    /// The workload's addressable spelling: the plain name at scale 1,
    /// `name@Nx` otherwise (the form [`by_spec`] parses back).
    pub fn spec(&self) -> String {
        if self.scale == 1 {
            self.name.to_string()
        } else {
            format!("{}@{}x", self.name, self.scale)
        }
    }

    /// A `factor`-times-larger variant of this workload: every global
    /// grows `factor×` (initial data tiled to match) and both entry
    /// arguments are multiplied by `factor`, so iteration counts and
    /// memory footprints scale together. See [`scale_module`] for why
    /// this is trap-free on the whole suite.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn scaled(&self, factor: u32) -> Workload {
        assert!(factor > 0, "scale factor must be positive");
        if factor == 1 {
            return self.clone();
        }
        Workload {
            module: scale_module(&self.module, factor),
            train_arg: self.train_arg * factor as i64,
            eval_arg: self.eval_arg * factor as i64,
            scale: self.scale * factor,
            ..self.clone()
        }
    }
}

macro_rules! workload {
    ($name:literal, $suite:expr, $desc:literal, $builder:path, $train:literal, $eval:literal) => {{
        let (module, entry) = $builder();
        Workload {
            name: $name,
            suite: $suite,
            description: $desc,
            module,
            entry,
            train_arg: $train,
            eval_arg: $eval,
            scale: 1,
        }
    }};
}

/// Builds all 23 workloads in the paper's figure order.
pub fn all() -> Vec<Workload> {
    use Suite::*;
    vec![
        workload!("164.gzip", Spec2kInt, "LZ hash-chain compressor", intbench::build_gzip, 128, 254),
        workload!("175.vpr", Spec2kInt, "annealing placement with one-time allocation", intbench::build_vpr, 200, 400),
        workload!("181.mcf", Spec2kInt, "in-place network-simplex relaxation", intbench::build_mcf, 4, 8),
        workload!("197.parser", Spec2kInt, "tokenizer with dictionary counters", intbench::build_parser, 128, 256),
        workload!("256.bzip2", Spec2kInt, "move-to-front coder", intbench::build_bzip2, 96, 192),
        workload!("300.twolf", Spec2kInt, "cell-placement refinement", intbench::build_twolf, 200, 400),
        workload!("172.mgrid", Spec2kFp, "multigrid stencil smoother", fpbench::build_mgrid, 64, 128),
        workload!("173.applu", Spec2kFp, "SSOR sweep with norm accumulator", fpbench::build_applu, 64, 128),
        workload!("177.mesa", Spec2kFp, "vertex transform with depth buffer", fpbench::build_mesa, 48, 96),
        workload!("179.art", Spec2kFp, "ART winner-take-all network", fpbench::build_art, 3, 6),
        workload!("183.equake", Spec2kFp, "sparse matvec with residual", fpbench::build_equake, 4, 8),
        workload!("cjpeg", Mediabench, "forward block transform + quantize", mediabench::build_cjpeg, 12, 24),
        workload!("djpeg", Mediabench, "dequantize + inverse block transform", mediabench::build_djpeg, 12, 24),
        workload!("epic", Mediabench, "image-pyramid analysis (aliased offsets)", mediabench::build_epic, 64, 128),
        workload!("unepic", Mediabench, "image-pyramid synthesis", mediabench::build_unepic, 64, 128),
        workload!("g721encode", Mediabench, "ADPCM encoder, 4-tap predictor", mediabench::build_g721encode, 128, 256),
        workload!("g721decode", Mediabench, "ADPCM decoder, 4-tap predictor", mediabench::build_g721decode, 128, 256),
        workload!("mpeg2dec", Mediabench, "motion compensation", mediabench::build_mpeg2dec, 96, 192),
        workload!("mpeg2enc", Mediabench, "SAD motion estimation", mediabench::build_mpeg2enc, 4, 8),
        workload!("pegwitdec", Mediabench, "chained block decryption", mediabench::build_pegwitdec, 24, 48),
        workload!("pegwitenc", Mediabench, "chained block encryption", mediabench::build_pegwitenc, 24, 48),
        workload!("rawcaudio", Mediabench, "2-tap ADPCM encoder", mediabench::build_rawcaudio, 128, 256),
        workload!("rawdaudio", Mediabench, "2-tap ADPCM decoder", mediabench::build_rawdaudio, 128, 256),
    ]
}

/// Builds the workload named `name` (paper spelling).
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// Names of all workloads, in figure order.
pub fn names() -> Vec<&'static str> {
    all().iter().map(|w| w.name).collect()
}

/// All workloads belonging to `suite`, in figure order.
pub fn by_suite(suite: Suite) -> Vec<Workload> {
    all().into_iter().filter(|w| w.suite == suite).collect()
}

/// Splits a workload spec into its base name and scale factor: plain
/// names mean scale 1, `name@Nx` means scale `N` (`N ≥ 1`). Returns
/// `None` for a malformed scale suffix — the *name* part is not
/// validated here, so lookup misses can be reported separately.
pub fn parse_spec(spec: &str) -> Option<(&str, u32)> {
    let Some((base, suffix)) = spec.rsplit_once('@') else {
        return Some((spec, 1));
    };
    let digits = suffix.strip_suffix('x')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let factor: u32 = digits.parse().ok()?;
    if factor == 0 {
        return None;
    }
    Some((base, factor))
}

/// Builds the workload addressed by `spec`: a plain name (paper
/// spelling) or the scaled form `name@Nx`, e.g. `rawdaudio@10x`.
pub fn by_spec(spec: &str) -> Option<Workload> {
    let (base, factor) = parse_spec(spec)?;
    Some(by_name(base)?.scaled(factor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::verify_module;

    #[test]
    fn twenty_three_workloads() {
        let ws = all();
        assert_eq!(ws.len(), 23);
        assert_eq!(by_suite(Suite::Spec2kInt).len(), 6);
        assert_eq!(by_suite(Suite::Spec2kFp).len(), 5);
        assert_eq!(by_suite(Suite::Mediabench).len(), 12);
    }

    #[test]
    fn all_verify_and_have_unique_names() {
        let ws = all();
        let mut names = std::collections::BTreeSet::new();
        for w in &ws {
            verify_module(&w.module).unwrap_or_else(|e| panic!("{}: {:?}", w.name, e));
            assert!(names.insert(w.name), "duplicate workload {}", w.name);
            assert!(w.train_arg > 0 && w.eval_arg > 0);
            assert!(w.train_arg < w.eval_arg, "{}: train must be smaller", w.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("rawcaudio").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn spec_parsing_and_scaled_lookup() {
        assert_eq!(parse_spec("rawdaudio"), Some(("rawdaudio", 1)));
        assert_eq!(parse_spec("rawdaudio@10x"), Some(("rawdaudio", 10)));
        assert_eq!(parse_spec("164.gzip@100x"), Some(("164.gzip", 100)));
        assert_eq!(parse_spec("rawdaudio@x"), None);
        assert_eq!(parse_spec("rawdaudio@0x"), None);
        assert_eq!(parse_spec("rawdaudio@10"), None);
        assert_eq!(parse_spec("rawdaudio@ten-x"), None);

        let w = by_spec("rawdaudio@10x").expect("scaled lookup");
        assert_eq!(w.scale, 10);
        assert_eq!(w.spec(), "rawdaudio@10x");
        let base = by_name("rawdaudio").unwrap();
        assert_eq!(w.train_arg, base.train_arg * 10);
        assert_eq!(w.eval_arg, base.eval_arg * 10);
        assert_eq!(by_name("rawdaudio").unwrap().spec(), "rawdaudio");
        assert!(by_spec("nonexistent@10x").is_none());
        assert!(by_spec("rawdaudio@0x").is_none());
    }

    #[test]
    fn suite_selector_parsing() {
        assert_eq!(Suite::parse("SPEC2K-INT"), Some(Suite::Spec2kInt));
        assert_eq!(Suite::parse("spec2kint"), Some(Suite::Spec2kInt));
        assert_eq!(Suite::parse("spec2k-fp"), Some(Suite::Spec2kFp));
        assert_eq!(Suite::parse("MediaBench"), Some(Suite::Mediabench));
        assert_eq!(Suite::parse("rawdaudio"), None);
    }

    #[test]
    fn modules_are_nontrivial() {
        for w in all() {
            assert!(
                w.module.static_inst_count() >= 20,
                "{} too small: {} insts",
                w.name,
                w.module.static_inst_count()
            );
        }
    }
}
