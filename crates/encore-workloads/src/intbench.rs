//! SPEC2000-integer stand-in kernels.
//!
//! Each kernel models the memory-update structure of the benchmark it is
//! named after — hash-table maintenance for 164.gzip, annealing swaps
//! with a one-time allocation for 175.vpr (the paper's Figure 2c
//! example), in-place relaxation for 181.mcf, token counting for
//! 197.parser, move-to-front coding for 256.bzip2 and neighborhood cost
//! swaps for 300.twolf. Integer codes carry the WAR-heavy, control-dense
//! behavior the paper observes for SPEC2K-INT.

use crate::util::{emit_cold_diag, lcg_data};
use encore_ir::{
    AddrExpr, BinOp, ExtEffect, FuncId, MemBase, Module, ModuleBuilder, Operand, UnOp,
};

/// Emits `dst = (seed * 1103515245 + 12345) & 0x7fffffff` — an in-IR LCG
/// so "random" choices stay pure computation (no opaque externs in hot
/// paths).
fn emit_lcg(f: &mut encore_ir::FunctionBuilder<'_>, seed: Operand) -> encore_ir::Reg {
    let m = f.bin(BinOp::Mul, seed, Operand::ImmI(1103515245));
    let a = f.bin(BinOp::Add, m.into(), Operand::ImmI(12345));
    f.bin(BinOp::And, a.into(), Operand::ImmI(0x7fff_ffff))
}

/// 164.gzip — LZ-style compressor: hash-chain match search over the
/// input window with in-place hash-table updates (the classic
/// read-modify-write that breaks idempotence) and an append-only output
/// stream.
pub fn build_gzip() -> (Module, FuncId) {
    const N: usize = 256;
    let mut mb = ModuleBuilder::new("164.gzip");
    let input = mb.global_init("input", N as u32, lcg_data(164, N, 17));
    let htab = mb.global_init("hash_tab", 64, vec![-1; 64]);
    let output = mb.global("output", 2 * N as u32);
    let out_len = mb.global("out_len", 1);

    // The match-length scan lives in its own function, like gzip's
    // longest_match(): a read-only helper whose inter-procedural memory
    // summary (loads input, stores nothing) keeps the caller's region
    // analyzable instead of Unknown.
    let match_len = mb.function("longest_match", 3, |f| {
        let cand = f.param(0);
        let pos = f.param(1);
        let n = f.param(2);
        let len = f.mov(Operand::ImmI(0));
        f.while_loop(
            |f| {
                let in_win = f.bin(BinOp::Lt, len.into(), Operand::ImmI(8));
                let pi = f.bin(BinOp::Add, pos.into(), len.into());
                let in_buf = f.bin(BinOp::Lt, pi.into(), n.into());
                let ci = f.bin(BinOp::Add, cand.into(), len.into());
                let a = f.load(AddrExpr::indexed(MemBase::Global(input), ci, 1, 0));
                let b = f.load(AddrExpr::indexed(MemBase::Global(input), pi, 1, 0));
                let eq = f.bin(BinOp::Eq, a.into(), b.into());
                let c0 = f.bin(BinOp::And, in_win.into(), in_buf.into());
                Operand::Reg(f.bin(BinOp::And, c0.into(), eq.into()))
            },
            |f| f.bin_to(len, BinOp::Add, len.into(), Operand::ImmI(1)),
        );
        f.ret(Some(len.into()));
    });

    let entry = mb.function("deflate", 1, |f| {
        let n = f.param(0);
        let limit = f.bin(BinOp::Sub, n.into(), Operand::ImmI(2));
        f.for_range(Operand::ImmI(0), limit.into(), |f, pos| {
            // h = (in[pos]*31 + in[pos+1]*7 + in[pos+2]) & 63
            let c0 = f.load(AddrExpr::indexed(MemBase::Global(input), pos, 1, 0));
            let c1 = f.load(AddrExpr::indexed(MemBase::Global(input), pos, 1, 1));
            let c2 = f.load(AddrExpr::indexed(MemBase::Global(input), pos, 1, 2));
            let t0 = f.bin(BinOp::Mul, c0.into(), Operand::ImmI(31));
            let t1 = f.bin(BinOp::Mul, c1.into(), Operand::ImmI(7));
            let t2 = f.bin(BinOp::Add, t0.into(), t1.into());
            let t3 = f.bin(BinOp::Add, t2.into(), c2.into());
            let h = f.bin(BinOp::And, t3.into(), Operand::ImmI(63));
            // cand = htab[h]; htab[h] = pos  (WAR on the hash chain)
            let cand = f.load(AddrExpr::indexed(MemBase::Global(htab), h, 1, 0));
            f.store(AddrExpr::indexed(MemBase::Global(htab), h, 1, 0), pos.into());
            // Match length search (read-only).
            let matched = f.mov(Operand::ImmI(0));
            let viable0 = f.bin(BinOp::Lt, cand.into(), pos.into());
            let nonneg = f.bin(BinOp::Le, Operand::ImmI(0), cand.into());
            let viable = f.bin(BinOp::And, viable0.into(), nonneg.into());
            f.if_then(viable.into(), |f| {
                let len = f.call(match_len, &[cand.into(), pos.into(), n.into()]);
                let good = f.bin(BinOp::Le, Operand::ImmI(3), len.into());
                f.if_then(good.into(), |f| f.mov_to(matched, len.into()));
            });
            // Emit token: out[ol] = matched ? -matched : literal;
            // out_len update is another WAR.
            let ol = f.load(AddrExpr::global(out_len, 0));
            f.if_else(
                matched.into(),
                |f| {
                    let neg = f.un(UnOp::Neg, matched.into());
                    f.store(AddrExpr::indexed(MemBase::Global(output), ol, 1, 0), neg.into());
                },
                |f| {
                    f.store(AddrExpr::indexed(MemBase::Global(output), ol, 1, 0), c0.into());
                },
            );
            emit_cold_diag(f, ol, 1 << 30); // output overflow, never hit
            let ol2 = f.bin(BinOp::Add, ol.into(), Operand::ImmI(1));
            f.store(AddrExpr::global(out_len, 0), ol2.into());
        });
        let total = f.load(AddrExpr::global(out_len, 0));
        f.ret(Some(total.into()));
    });
    (mb.finish(), entry)
}

/// 175.vpr — simulated-annealing placement: `try_swap` is called per
/// iteration; its first invocation runs a one-time scratch allocation
/// (the paper's Figure 2c cold path) while the hot path swaps two
/// placement cells when the cost delta improves.
pub fn build_vpr() -> (Module, FuncId) {
    const GRID: i64 = 64;
    let mut mb = ModuleBuilder::new("175.vpr");
    let cost = mb.global_init("cost", GRID as u32, lcg_data(175, GRID as usize, 100));
    let place = mb.global_init("placement", GRID as u32, (0..GRID).collect());
    let first = mb.global("first_flag", 1);
    let scratch = mb.global("scratch_ptr", 1);
    let accepted = mb.global("accepted", 1);

    let try_swap = mb.declare("try_swap", 1);
    mb.define(try_swap, |f| {
        let it = f.param(0);
        // Cold one-time allocation path (Figure 2c).
        let flag = f.load(AddrExpr::global(first, 0));
        let is_first = f.bin(BinOp::Eq, flag.into(), Operand::ImmI(0));
        f.if_then(is_first.into(), |f| {
            let p = f.alloc(Operand::ImmI(16));
            f.store(AddrExpr::global(scratch, 0), p.into());
            f.store(AddrExpr::global(first, 0), Operand::ImmI(1));
        });
        // Pick two pseudo-random cells.
        let r1 = emit_lcg(f, it.into());
        let a = f.bin(BinOp::Rem, r1.into(), Operand::ImmI(GRID));
        let r2 = emit_lcg(f, r1.into());
        let b = f.bin(BinOp::Rem, r2.into(), Operand::ImmI(GRID));
        // Wirelength-style cost evaluation: sum the affected nets around
        // both cells (a read-only inner loop, like vpr's net scan — this
        // is the hot, naturally idempotent part of try_swap).
        let ca = f.mov(Operand::ImmI(0));
        let cb = f.mov(Operand::ImmI(0));
        f.for_range(Operand::ImmI(0), Operand::ImmI(4), |f, k| {
            let ia = f.bin(BinOp::Add, a.into(), k.into());
            let wa = f.bin(BinOp::Rem, ia.into(), Operand::ImmI(GRID));
            let va = f.load(AddrExpr::indexed(MemBase::Global(cost), wa, 1, 0));
            let pa = f.load(AddrExpr::indexed(MemBase::Global(place), wa, 1, 0));
            let da = f.bin(BinOp::Sub, pa.into(), a.into());
            let ma = f.un(UnOp::Abs, da.into());
            let wa_cost = f.bin(BinOp::Mul, va.into(), ma.into());
            let sa = f.bin(BinOp::Shr, wa_cost.into(), Operand::ImmI(2));
            f.bin_to(ca, BinOp::Add, ca.into(), sa.into());
            let ib = f.bin(BinOp::Add, b.into(), k.into());
            let wb = f.bin(BinOp::Rem, ib.into(), Operand::ImmI(GRID));
            let vb = f.load(AddrExpr::indexed(MemBase::Global(cost), wb, 1, 0));
            let pb = f.load(AddrExpr::indexed(MemBase::Global(place), wb, 1, 0));
            let db = f.bin(BinOp::Sub, pb.into(), b.into());
            let mab = f.un(UnOp::Abs, db.into());
            let wb_cost = f.bin(BinOp::Mul, vb.into(), mab.into());
            let sb = f.bin(BinOp::Shr, wb_cost.into(), Operand::ImmI(2));
            f.bin_to(cb, BinOp::Add, cb.into(), sb.into());
        });
        let delta = f.bin(BinOp::Sub, cb.into(), ca.into());
        let improves = f.bin(BinOp::Lt, delta.into(), Operand::ImmI(0));
        f.if_then(improves.into(), |f| {
            // Swap placements (two WAR pairs on dynamic addresses).
            let pa = f.load(AddrExpr::indexed(MemBase::Global(place), a, 1, 0));
            let pb = f.load(AddrExpr::indexed(MemBase::Global(place), b, 1, 0));
            f.store(AddrExpr::indexed(MemBase::Global(place), a, 1, 0), pb.into());
            f.store(AddrExpr::indexed(MemBase::Global(place), b, 1, 0), pa.into());
            let acc = f.load(AddrExpr::global(accepted, 0));
            let acc2 = f.bin(BinOp::Add, acc.into(), Operand::ImmI(1));
            f.store(AddrExpr::global(accepted, 0), acc2.into());
        });
        f.ret(Some(delta.into()));
    });

    let entry = mb.function("place", 1, |f| {
        let n = f.param(0);
        f.for_range(Operand::ImmI(0), n.into(), |f, it| {
            f.call_void(try_swap, &[it.into()]);
        });
        let acc = f.load(AddrExpr::global(accepted, 0));
        f.ret(Some(acc.into()));
    });
    (mb.finish(), entry)
}

/// 181.mcf — network-simplex relaxation: sweeps over an arc list
/// updating node potentials in place through dynamic indices; the
/// conservative alias oracle must checkpoint nearly every store, making
/// protection expensive (mcf shows the worst cost/coverage in the
/// paper).
pub fn build_mcf() -> (Module, FuncId) {
    const ARCS: usize = 128;
    const NODES: usize = 32;
    let mut mb = ModuleBuilder::new("181.mcf");
    let src = mb.global_init("arc_src", ARCS as u32, lcg_data(181, ARCS, NODES as i64));
    let dst = mb.global_init("arc_dst", ARCS as u32, lcg_data(182, ARCS, NODES as i64));
    let cost = mb.global_init("arc_cost", ARCS as u32, lcg_data(183, ARCS, 50));
    // Bellman-Ford-style source potentials: node 0 is the source, the
    // rest start "infinite" so relaxations genuinely fire and cascade.
    let mut pot_init = vec![100_000; NODES];
    pot_init[0] = 0;
    let pot = mb.global_init("potential", NODES as u32, pot_init);
    let entry = mb.function("relax", 1, |f| {
        let iters = f.param(0);
        let changed = f.mov(Operand::ImmI(0));
        f.for_range(Operand::ImmI(0), iters.into(), |f, it| {
            // Per-sweep demand perturbation: the real mcf re-prices arcs
            // every pass, so potentials keep moving and the in-place
            // updates below stay hot instead of converging after one
            // sweep.
            f.for_range(Operand::ImmI(0), Operand::ImmI(NODES as i64), |f, v| {
                let pv = f.load(AddrExpr::indexed(MemBase::Global(pot), v, 1, 0));
                let jitter = f.bin(BinOp::And, it.into(), Operand::ImmI(3));
                let bumped = f.bin(BinOp::Add, pv.into(), jitter.into());
                f.store(AddrExpr::indexed(MemBase::Global(pot), v, 1, 0), bumped.into());
            });
            f.for_range(Operand::ImmI(0), Operand::ImmI(ARCS as i64), |f, a| {
                let u = f.load(AddrExpr::indexed(MemBase::Global(src), a, 1, 0));
                let v = f.load(AddrExpr::indexed(MemBase::Global(dst), a, 1, 0));
                let c = f.load(AddrExpr::indexed(MemBase::Global(cost), a, 1, 0));
                let pu = f.load(AddrExpr::indexed(MemBase::Global(pot), u, 1, 0));
                // Reduced-cost pricing: weight the arc by its endpoints'
                // positions (register-only computation, like mcf's
                // implicit-arc pricing loop).
                let du = f.bin(BinOp::Sub, v.into(), u.into());
                let mu = f.un(UnOp::Abs, du.into());
                let w0 = f.bin(BinOp::Mul, c.into(), mu.into());
                let w1 = f.bin(BinOp::Shr, w0.into(), Operand::ImmI(3));
                let priced = f.bin(BinOp::Add, c.into(), w1.into());
                let cand = f.bin(BinOp::Add, pu.into(), priced.into());
                let pv = f.load(AddrExpr::indexed(MemBase::Global(pot), v, 1, 0));
                emit_cold_diag(f, cand, 1 << 40); // negative cycle, never hit
                let better = f.bin(BinOp::Lt, cand.into(), pv.into());
                f.if_then(better.into(), |f| {
                    // In-place potential update: WAR through dynamic index.
                    f.store(AddrExpr::indexed(MemBase::Global(pot), v, 1, 0), cand.into());
                    f.bin_to(changed, BinOp::Add, changed.into(), Operand::ImmI(1));
                });
            });
        });
        f.ret(Some(changed.into()));
    });
    (mb.finish(), entry)
}

/// 197.parser — tokenizer + dictionary counters: scans text, hashes
/// words, bumps per-bucket and total counters in place (small-constant
/// WARs), with a never-exercised error path (unknown character class)
/// that only `Pmin = 0.0` pruning can remove.
pub fn build_parser() -> (Module, FuncId) {
    const N: usize = 256;
    let mut mb = ModuleBuilder::new("197.parser");
    // Text of word characters (1..=26) and separators (0); one extra
    // zero cell acts as a sentinel so the word scan can look one past
    // the requested length without faulting.
    let text: Vec<i64> = lcg_data(197, N, 30).into_iter().map(|v| (v - 3).max(0)).collect();
    let text_g = mb.global_init("text", N as u32 + 1, text);
    let wcount = mb.global("word_count", 64);
    let total = mb.global("total", 1);
    let entry = mb.function("tokenize", 1, |f| {
        let n = f.param(0);
        let pos = f.mov(Operand::ImmI(0));
        f.while_loop(
            |f| Operand::Reg(f.bin(BinOp::Lt, pos.into(), n.into())),
            |f| {
                let c = f.load(AddrExpr::indexed(MemBase::Global(text_g), pos, 1, 0));
                // Never-taken error path (c > 26 cannot occur in the
                // training data): opaque diagnostics poison the region
                // unless pruned.
                let bad = f.bin(BinOp::Lt, Operand::ImmI(26), c.into());
                f.if_then(bad.into(), |f| {
                    f.call_ext_void("print_i64", &[c.into()], ExtEffect::Opaque);
                });
                f.if_else(
                    c.into(),
                    |f| {
                        // Inside a word: hash until separator.
                        let h = f.mov(Operand::ImmI(0));
                        f.while_loop(
                            |f| {
                                let in_buf = f.bin(BinOp::Lt, pos.into(), n.into());
                                let ch = f.load(AddrExpr::indexed(
                                    MemBase::Global(text_g),
                                    pos,
                                    1,
                                    0,
                                ));
                                let nz = f.bin(BinOp::Ne, ch.into(), Operand::ImmI(0));
                                Operand::Reg(f.bin(BinOp::And, in_buf.into(), nz.into()))
                            },
                            |f| {
                                let ch = f.load(AddrExpr::indexed(
                                    MemBase::Global(text_g),
                                    pos,
                                    1,
                                    0,
                                ));
                                let h31 = f.bin(BinOp::Mul, h.into(), Operand::ImmI(31));
                                f.bin_to(h, BinOp::Add, h31.into(), ch.into());
                                f.bin_to(pos, BinOp::Add, pos.into(), Operand::ImmI(1));
                            },
                        );
                        let bucket = f.bin(BinOp::And, h.into(), Operand::ImmI(63));
                        let wc =
                            f.load(AddrExpr::indexed(MemBase::Global(wcount), bucket, 1, 0));
                        let wc2 = f.bin(BinOp::Add, wc.into(), Operand::ImmI(1));
                        f.store(
                            AddrExpr::indexed(MemBase::Global(wcount), bucket, 1, 0),
                            wc2.into(),
                        );
                        let t = f.load(AddrExpr::global(total, 0));
                        let t2 = f.bin(BinOp::Add, t.into(), Operand::ImmI(1));
                        f.store(AddrExpr::global(total, 0), t2.into());
                    },
                    |f| {
                        f.bin_to(pos, BinOp::Add, pos.into(), Operand::ImmI(1));
                    },
                );
            },
        );
        let t = f.load(AddrExpr::global(total, 0));
        f.ret(Some(t.into()));
    });
    (mb.finish(), entry)
}

/// 256.bzip2 — move-to-front coding: per input symbol, search the MTF
/// table (reads), emit its rank, then shift the table in place (a dense
/// cluster of WARs over dynamic indices).
pub fn build_bzip2() -> (Module, FuncId) {
    const N: usize = 192;
    let mut mb = ModuleBuilder::new("256.bzip2");
    // Skewed symbol distribution (small symbols dominate), the regime
    // move-to-front coding is designed for: frequent symbols sit near
    // the table front, so the in-place shift runs are short and the
    // read-only rank search dominates.
    let symbols: Vec<i64> = lcg_data(256, N, 64).into_iter().map(|v| (v * v) / 96).collect();
    let input = mb.global_init("input", N as u32, symbols);
    let mtf = mb.global_init("mtf", 64, (0..64).collect());
    let output = mb.global("output", N as u32);
    // Code-length table for the entropy-coder back end (rank 0 is the
    // cheapest, like bzip2's RUNA/RUNB symbols).
    let clen: Vec<i64> = (0..64).map(|r| 1 + (64 - (r as i64)).leading_zeros() as i64).collect();
    let codelen = mb.global_init("codelen", 64, clen);
    let bits = mb.global("bits", N as u32);
    let entry = mb.function("mtf_encode", 1, |f| {
        let n = f.param(0);
        f.for_range(Operand::ImmI(0), n.into(), |f, i| {
            let c = f.load(AddrExpr::indexed(MemBase::Global(input), i, 1, 0));
            // Find rank j with mtf[j] == c.
            let j = f.mov(Operand::ImmI(0));
            f.while_loop(
                |f| {
                    let v = f.load(AddrExpr::indexed(MemBase::Global(mtf), j, 1, 0));
                    Operand::Reg(f.bin(BinOp::Ne, v.into(), c.into()))
                },
                |f| f.bin_to(j, BinOp::Add, j.into(), Operand::ImmI(1)),
            );
            f.store(AddrExpr::indexed(MemBase::Global(output), i, 1, 0), j.into());
            emit_cold_diag(f, j, 1 << 20); // rank overflow, never hit
            // Entropy-coder bookkeeping: accumulate the bit cost of the
            // emitted rank (read-only table + register math, streamed to
            // a separate buffer — the cheap-to-protect part of bzip2).
            let cl = f.load(AddrExpr::indexed(MemBase::Global(codelen), j, 1, 0));
            let j2 = f.bin(BinOp::Mul, j.into(), j.into());
            let bias = f.bin(BinOp::Shr, j2.into(), Operand::ImmI(4));
            let cost0 = f.bin(BinOp::Add, cl.into(), bias.into());
            let cost1 = f.bin(BinOp::Max, cost0.into(), Operand::ImmI(1));
            let cost2 = f.bin(BinOp::Min, cost1.into(), Operand::ImmI(24));
            let shifted = f.bin(BinOp::Shl, cost2.into(), Operand::ImmI(2));
            let mixed = f.bin(BinOp::Xor, shifted.into(), c.into());
            f.store(AddrExpr::indexed(MemBase::Global(bits), i, 1, 0), mixed.into());
            // Shift mtf[0..j] up by one (in-place WARs), then front = c.
            let k = f.mov(j.into());
            f.while_loop(
                |f| Operand::Reg(f.bin(BinOp::Lt, Operand::ImmI(0), k.into())),
                |f| {
                    let prev = f.load(AddrExpr::indexed(MemBase::Global(mtf), k, 1, -1));
                    f.store(AddrExpr::indexed(MemBase::Global(mtf), k, 1, 0), prev.into());
                    f.bin_to(k, BinOp::Sub, k.into(), Operand::ImmI(1));
                },
            );
            f.store(AddrExpr::global(mtf, 0), c.into());
        });
        let last = f.load(AddrExpr::global(output, 0));
        f.ret(Some(last.into()));
    });
    (mb.finish(), entry)
}

/// 300.twolf — standard-cell placement refinement: neighborhood cost
/// evaluation (reads) followed by conditional in-place swaps, plus an
/// overflow diagnostic path never taken during training.
pub fn build_twolf() -> (Module, FuncId) {
    const CELLS: i64 = 64;
    let mut mb = ModuleBuilder::new("300.twolf");
    let grid = mb.global_init("grid", CELLS as u32, lcg_data(300, CELLS as usize, 40));
    let best = mb.global_init("best_cost", 1, vec![1_000_000]);
    let entry = mb.function("refine", 1, |f| {
        let n = f.param(0);
        let swaps = f.mov(Operand::ImmI(0));
        f.for_range(Operand::ImmI(0), n.into(), |f, it| {
            let r = emit_lcg(f, it.into());
            let a = f.bin(BinOp::Rem, r.into(), Operand::ImmI(CELLS - 1));
            // Cost of a and its right neighbor plus local context.
            let ga = f.load(AddrExpr::indexed(MemBase::Global(grid), a, 1, 0));
            let gb = f.load(AddrExpr::indexed(MemBase::Global(grid), a, 1, 1));
            let localcost = f.mov(Operand::ImmI(0));
            f.for_range(Operand::ImmI(0), Operand::ImmI(4), |f, k| {
                let idx = f.bin(BinOp::Add, a.into(), k.into());
                let wrapped = f.bin(BinOp::Rem, idx.into(), Operand::ImmI(CELLS));
                let gv = f.load(AddrExpr::indexed(MemBase::Global(grid), wrapped, 1, 0));
                f.bin_to(localcost, BinOp::Add, localcost.into(), gv.into());
            });
            let order_bad = f.bin(BinOp::Lt, gb.into(), ga.into());
            f.if_then(order_bad.into(), |f| {
                // Swap adjacent cells (in-place WARs).
                f.store(AddrExpr::indexed(MemBase::Global(grid), a, 1, 0), gb.into());
                f.store(AddrExpr::indexed(MemBase::Global(grid), a, 1, 1), ga.into());
                f.bin_to(swaps, BinOp::Add, swaps.into(), Operand::ImmI(1));
            });
            let cur = f.load(AddrExpr::global(best, 0));
            let better = f.bin(BinOp::Lt, localcost.into(), cur.into());
            f.if_then(better.into(), |f| {
                f.store(AddrExpr::global(best, 0), localcost.into());
            });
            // Never-taken diagnostic (costs are bounded in training data).
            let overflow = f.bin(BinOp::Lt, Operand::ImmI(1_000_000), localcost.into());
            f.if_then(overflow.into(), |f| {
                f.call_ext_void("print_i64", &[localcost.into()], ExtEffect::Opaque);
            });
        });
        f.ret(Some(swaps.into()));
    });
    (mb.finish(), entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::verify_module;

    #[test]
    fn all_int_kernels_verify() {
        for (m, entry) in [
            build_gzip(),
            build_vpr(),
            build_mcf(),
            build_parser(),
            build_bzip2(),
            build_twolf(),
        ] {
            verify_module(&m).unwrap_or_else(|e| panic!("{}: {:?}", m.name, e));
            assert_eq!(m.func(entry).param_count, 1);
        }
    }

    #[test]
    fn gzip_has_war_structure() {
        let (m, _) = build_gzip();
        // The hash-table global exists and the kernel stores to it.
        assert!(m.globals.iter().any(|g| g.name == "hash_tab"));
    }

    #[test]
    fn vpr_has_cold_alloc() {
        let (m, _) = build_vpr();
        let try_swap = m.func_by_name("try_swap").expect("try_swap exists");
        let has_alloc = m
            .func(try_swap)
            .blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| matches!(i, encore_ir::Inst::Alloc { .. })));
        assert!(has_alloc, "vpr must model the one-time allocation path");
    }
}
