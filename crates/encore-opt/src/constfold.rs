//! Block-local constant propagation and folding.
//!
//! Tracks a register → constant map through each basic block (no SSA, so
//! facts never cross block boundaries), replaces constant register
//! operands with immediates, folds fully-constant `Bin`/`Un` into `Mov`,
//! and rewrites branches whose condition is known into jumps.

use crate::Pass;
use encore_ir::{BinOp, Function, Inst, Operand, Terminator, UnOp};
use std::collections::HashMap;

/// Constant value lattice entry.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Const {
    Int(i64),
    Float(f64),
}

fn op_const(consts: &HashMap<u32, Const>, op: &Operand) -> Option<Const> {
    match op {
        Operand::ImmI(v) => Some(Const::Int(*v)),
        Operand::ImmF(v) => Some(Const::Float(*v)),
        Operand::Reg(r) => consts.get(&r.raw()).copied(),
    }
}

fn to_operand(c: Const) -> Operand {
    match c {
        Const::Int(v) => Operand::ImmI(v),
        Const::Float(v) => Operand::ImmF(v),
    }
}

/// Folds an integer binary op; `None` when the combination is not a
/// compile-time-safe integer fold.
fn fold_bin(op: BinOp, a: Const, b: Const) -> Option<Const> {
    use BinOp::*;
    let (x, y) = match (a, b) {
        (Const::Int(x), Const::Int(y)) => (x, y),
        (Const::Float(x), Const::Float(y)) => {
            return Some(match op {
                FAdd => Const::Float(x + y),
                FSub => Const::Float(x - y),
                FMul => Const::Float(x * y),
                FDiv => Const::Float(if y == 0.0 { 0.0 } else { x / y }),
                FLt => Const::Int((x < y) as i64),
                FLe => Const::Int((x <= y) as i64),
                _ => return None,
            })
        }
        _ => return None,
    };
    Some(Const::Int(match op {
        Add => x.wrapping_add(y),
        Sub => x.wrapping_sub(y),
        Mul => x.wrapping_mul(y),
        Div => {
            if y == 0 {
                0
            } else {
                x.wrapping_div(y)
            }
        }
        Rem => {
            if y == 0 {
                0
            } else {
                x.wrapping_rem(y)
            }
        }
        And => x & y,
        Or => x | y,
        Xor => x ^ y,
        Shl => x.wrapping_shl(y as u32 & 63),
        Shr => x.wrapping_shr(y as u32 & 63),
        Min => x.min(y),
        Max => x.max(y),
        Eq => (x == y) as i64,
        Ne => (x != y) as i64,
        Lt => (x < y) as i64,
        Le => (x <= y) as i64,
        _ => return None,
    }))
}

fn fold_un(op: UnOp, a: Const) -> Option<Const> {
    use UnOp::*;
    Some(match (op, a) {
        (Neg, Const::Int(x)) => Const::Int(x.wrapping_neg()),
        (Not, Const::Int(x)) => Const::Int(!x),
        (Abs, Const::Int(x)) => Const::Int(x.wrapping_abs()),
        (IToF, Const::Int(x)) => Const::Float(x as f64),
        (FNeg, Const::Float(x)) => Const::Float(-x),
        (FSqrt, Const::Float(x)) => Const::Float(x.abs().sqrt()),
        (FToI, Const::Float(x)) => Const::Int(if x.is_nan() {
            0
        } else {
            x.clamp(i64::MIN as f64, i64::MAX as f64) as i64
        }),
        _ => return None,
    })
}

/// The constant-folding pass.
#[derive(Clone, Copy, Default, Debug)]
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "constfold"
    }

    fn run(&self, func: &mut Function) -> bool {
        let mut changed = false;
        for block in &mut func.blocks {
            let mut consts: HashMap<u32, Const> = HashMap::new();
            for inst in &mut block.insts {
                // Replace known-constant register operands with
                // immediates (except address registers, which must stay
                // registers syntactically).
                let subst = |op: &mut Operand, consts: &HashMap<u32, Const>, changed: &mut bool| {
                    if let Operand::Reg(r) = op {
                        if let Some(c) = consts.get(&r.raw()) {
                            *op = to_operand(*c);
                            *changed = true;
                        }
                    }
                };
                match inst {
                    Inst::Bin { lhs, rhs, .. } => {
                        subst(lhs, &consts, &mut changed);
                        subst(rhs, &consts, &mut changed);
                    }
                    Inst::Un { src, .. } | Inst::Mov { src, .. } => {
                        subst(src, &consts, &mut changed)
                    }
                    Inst::Store { src, .. } => subst(src, &consts, &mut changed),
                    Inst::Alloc { size, .. } => subst(size, &consts, &mut changed),
                    Inst::Call { args, .. } | Inst::CallExt { args, .. } => {
                        for a in args {
                            subst(a, &consts, &mut changed);
                        }
                    }
                    _ => {}
                }
                // Fold and update the lattice.
                let mut folded: Option<(encore_ir::Reg, Const)> = None;
                match inst {
                    Inst::Bin { op, dst, lhs, rhs } => {
                        if let (Some(a), Some(b)) = (op_const(&consts, lhs), op_const(&consts, rhs))
                        {
                            if let Some(c) = fold_bin(*op, a, b) {
                                folded = Some((*dst, c));
                            }
                        }
                    }
                    Inst::Un { op, dst, src } => {
                        if let Some(a) = op_const(&consts, src) {
                            if let Some(c) = fold_un(*op, a) {
                                folded = Some((*dst, c));
                            }
                        }
                    }
                    Inst::Mov { dst, src } => {
                        if let Some(c) = op_const(&consts, src) {
                            folded = Some((*dst, c));
                        }
                    }
                    _ => {}
                }
                if let Some((dst, c)) = folded {
                    if !matches!(inst, Inst::Mov { src, .. } if op_const(&consts, src).is_some()) {
                        *inst = Inst::Mov { dst, src: to_operand(c) };
                        changed = true;
                    }
                    consts.insert(dst.raw(), c);
                } else if let Some(d) = inst.def() {
                    consts.remove(&d.raw());
                }
            }
            // Branch on a known condition becomes a jump.
            if let Some(Terminator::Branch { cond, then_bb, else_bb }) = &mut block.term {
                if let Some(c) = op_const(&consts, cond) {
                    let truthy = match c {
                        Const::Int(v) => v != 0,
                        Const::Float(v) => v != 0.0,
                    };
                    let target = if truthy { *then_bb } else { *else_bb };
                    block.term = Some(Terminator::Jump(target));
                    changed = true;
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{ModuleBuilder, Operand};

    #[test]
    fn folds_constant_arithmetic() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            let a = f.mov(Operand::ImmI(6));
            let b = f.bin(BinOp::Mul, a.into(), Operand::ImmI(7));
            f.ret(Some(b.into()));
        });
        let mut m = mb.finish();
        assert!(ConstFold.run(&mut m.funcs[0]));
        // The multiply became `mov 42`.
        let has_mov42 = m.funcs[0].blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Mov { src: Operand::ImmI(42), .. }));
        assert!(has_mov42, "{}", m.funcs[0]);
    }

    #[test]
    fn folds_constant_branch_to_jump() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            f.if_else(Operand::ImmI(1), |_| {}, |_| {});
            f.ret(None);
        });
        let mut m = mb.finish();
        assert!(ConstFold.run(&mut m.funcs[0]));
        assert!(matches!(
            m.funcs[0].blocks[0].term,
            Some(Terminator::Jump(b)) if b == encore_ir::BlockId::new(1)
        ));
    }

    #[test]
    fn facts_do_not_cross_redefinition() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        mb.function("f", 0, |f| {
            let a = f.mov(Operand::ImmI(1));
            f.load_to(a, encore_ir::AddrExpr::global(g, 0)); // a no longer const
            let b = f.bin(BinOp::Add, a.into(), Operand::ImmI(1));
            f.ret(Some(b.into()));
        });
        let mut m = mb.finish();
        ConstFold.run(&mut m.funcs[0]);
        // The add must NOT be folded (a was clobbered by the load).
        let adds: usize = m.funcs[0].blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .count();
        assert_eq!(adds, 1);
    }

    #[test]
    fn float_folding() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            let a = f.mov(Operand::ImmF(2.0));
            let b = f.bin(BinOp::FMul, a.into(), Operand::ImmF(4.0));
            f.ret(Some(b.into()));
        });
        let mut m = mb.finish();
        assert!(ConstFold.run(&mut m.funcs[0]));
        assert!(m.funcs[0].blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Mov { src: Operand::ImmF(v), .. } if *v == 8.0)));
    }

    #[test]
    fn idempotent_when_nothing_to_fold() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 2, |f| {
            let a = f.param(0);
            let b = f.param(1);
            let s = f.bin(BinOp::Add, a.into(), b.into());
            f.ret(Some(s.into()));
        });
        let mut m = mb.finish();
        assert!(!ConstFold.run(&mut m.funcs[0]));
    }
}
