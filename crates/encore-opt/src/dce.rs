//! Dead-code elimination.
//!
//! Removes side-effect-free instructions (`Bin`, `Un`, `Mov`, `Lea`)
//! whose destination is dead at that point, using per-instruction
//! liveness derived backward from block live-outs.
//!
//! Like production optimizers, DCE assumes type-correct programs: a dead
//! `Bin` that *would* have trapped on an operand-type mismatch is removed
//! anyway (ill-typed programs have no optimization guarantees).

use crate::Pass;
use encore_analysis::Liveness;
use encore_ir::{Function, Inst};
use std::collections::BTreeSet;

/// The dead-code-elimination pass.
#[derive(Clone, Copy, Default, Debug)]
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, func: &mut Function) -> bool {
        let liveness = Liveness::compute(func);
        let mut changed = false;
        for (bid, block) in func
            .blocks
            .iter_mut()
            .enumerate()
            .map(|(i, b)| (encore_ir::BlockId::new(i as u32), b))
        {
            // Walk backward from the block live-out, marking dead defs.
            let mut live: BTreeSet<encore_ir::Reg> = liveness.live_out(bid);
            if let Some(t) = &block.term {
                live.extend(t.uses());
            }
            let mut keep = vec![true; block.insts.len()];
            for (i, inst) in block.insts.iter().enumerate().rev() {
                let removable = matches!(
                    inst,
                    Inst::Bin { .. } | Inst::Un { .. } | Inst::Mov { .. } | Inst::Lea { .. }
                );
                let dead_def = inst.def().map(|d| !live.contains(&d)).unwrap_or(false);
                if removable && dead_def {
                    keep[i] = false;
                    changed = true;
                    continue;
                }
                if let Some(d) = inst.def() {
                    live.remove(&d);
                }
                live.extend(inst.uses());
            }
            if changed {
                let mut idx = 0;
                block.insts.retain(|_| {
                    let k = keep[idx];
                    idx += 1;
                    k
                });
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{AddrExpr, BinOp, ModuleBuilder, Operand};

    #[test]
    fn removes_dead_arithmetic() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let _dead = f.bin(BinOp::Mul, p.into(), Operand::ImmI(3));
            f.ret(Some(p.into()));
        });
        let mut m = mb.finish();
        assert!(Dce.run(&mut m.funcs[0]));
        assert!(m.funcs[0].blocks[0].insts.is_empty());
    }

    #[test]
    fn keeps_live_chain() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let a = f.bin(BinOp::Add, p.into(), Operand::ImmI(1));
            let b = f.bin(BinOp::Mul, a.into(), Operand::ImmI(2));
            f.ret(Some(b.into()));
        });
        let mut m = mb.finish();
        assert!(!Dce.run(&mut m.funcs[0]));
        assert_eq!(m.funcs[0].blocks[0].insts.len(), 2);
    }

    #[test]
    fn never_removes_stores_or_calls() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        let leaf = mb.function("leaf", 0, |f| f.ret(None));
        mb.function("f", 0, |f| {
            f.store(AddrExpr::global(g, 0), Operand::ImmI(1));
            f.call_void(leaf, &[]);
            f.ret(None);
        });
        let mut m = mb.finish();
        assert!(!Dce.run(&mut m.funcs[1]));
        assert_eq!(m.funcs[1].blocks[0].insts.len(), 2);
    }

    #[test]
    fn dead_value_live_in_other_block_is_kept() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let v = f.bin(BinOp::Add, p.into(), Operand::ImmI(1));
            f.if_else(p.into(), |_| {}, |_| {});
            f.ret(Some(v.into())); // v used in the join block
        });
        let mut m = mb.finish();
        assert!(!Dce.run(&mut m.funcs[0]));
    }

    #[test]
    fn cascading_dead_code_removed_by_iteration() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let a = f.bin(BinOp::Add, p.into(), Operand::ImmI(1));
            let _b = f.bin(BinOp::Mul, a.into(), Operand::ImmI(2)); // both dead
            f.ret(Some(p.into()));
        });
        let mut m = mb.finish();
        // One backward pass removes both (b first, making a dead too).
        assert!(Dce.run(&mut m.funcs[0]));
        assert!(m.funcs[0].blocks[0].insts.is_empty(), "{}", m.funcs[0]);
    }
}
