//! CFG simplification: thread trivial jumps, merge straight-line block
//! pairs, and drop unreachable blocks (compacting block ids).

use crate::Pass;
use encore_ir::{BlockId, Function, Terminator};
use std::collections::BTreeMap;

/// The CFG-simplification pass.
#[derive(Clone, Copy, Default, Debug)]
pub struct SimplifyCfg;

/// Follows chains of empty forwarding blocks (`insts = [], term = jmp X`)
/// to their final destination, with cycle protection.
fn resolve_forward(func: &Function, mut b: BlockId) -> BlockId {
    let mut hops = 0;
    while hops < func.blocks.len() {
        let block = func.block(b);
        match (&block.insts[..], &block.term) {
            ([], Some(Terminator::Jump(t))) if *t != b => {
                b = *t;
                hops += 1;
            }
            _ => break,
        }
    }
    b
}

impl Pass for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplify-cfg"
    }

    fn run(&self, func: &mut Function) -> bool {
        let mut changed = false;

        // 1. Thread jumps through empty forwarding blocks.
        for i in 0..func.blocks.len() {
            let bid = BlockId::new(i as u32);
            let Some(mut term) = func.block(bid).term.clone() else { continue };
            let mut rewrote = false;
            term.map_successors(|s| {
                let r = resolve_forward(func, s);
                if r != s {
                    rewrote = true;
                }
                r
            });
            if rewrote {
                func.block_mut(bid).term = Some(term);
                changed = true;
            }
        }

        // 2. Merge `a → b` when a's only successor is b and b's only
        //    predecessor is a (and b is not the entry).
        let preds = func.predecessors();
        for i in 0..func.blocks.len() {
            let a = BlockId::new(i as u32);
            let Some(Terminator::Jump(b)) = func.block(a).term.clone() else { continue };
            if b == func.entry() || b == a {
                continue;
            }
            if preds.get(&b).map(|p| p.len()) != Some(1) {
                continue;
            }
            // Splice b into a.
            let spliced = std::mem::take(&mut func.block_mut(b).insts);
            let term = func.block_mut(b).term.take();
            let ab = func.block_mut(a);
            ab.insts.extend(spliced);
            ab.term = term;
            // Leave b as an empty unreachable stub; step 3 removes it.
            func.block_mut(b).term = Some(Terminator::Ret(None));
            changed = true;
            // Only one merge per run iteration keeps the pred map valid;
            // the driver re-runs passes to fixpoint.
            break;
        }

        // 3. Remove unreachable blocks and compact ids.
        let reachable = encore_analysis::order::reachable_from(func, func.entry(), None);
        if reachable.len() != func.blocks.len() {
            let mut remap: BTreeMap<BlockId, BlockId> = BTreeMap::new();
            let mut kept = Vec::with_capacity(reachable.len());
            for (i, b) in func.block_ids().enumerate() {
                if reachable.contains(&b) {
                    remap.insert(b, BlockId::new(kept.len() as u32));
                    kept.push(i);
                }
            }
            let old = std::mem::take(&mut func.blocks);
            for (i, block) in old.into_iter().enumerate() {
                let bid = BlockId::new(i as u32);
                if !reachable.contains(&bid) {
                    continue;
                }
                let mut block = block;
                if let Some(t) = &mut block.term {
                    t.map_successors(|s| remap[&s]);
                }
                func.blocks.push(block);
            }
            changed = true;
        }

        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{verify_module, BinOp, Inst, ModuleBuilder, Operand};

    #[test]
    fn merges_straightline_blocks() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let next = f.add_block();
            f.jump(next);
            f.switch_to(next);
            let r = f.bin(BinOp::Add, p.into(), Operand::ImmI(1));
            f.ret(Some(r.into()));
        });
        let mut m = mb.finish();
        assert!(SimplifyCfg.run(&mut m.funcs[0]));
        verify_module(&m).expect("still valid");
        assert_eq!(m.funcs[0].blocks.len(), 1);
        assert!(matches!(m.funcs[0].blocks[0].insts[0], Inst::Bin { .. }));
    }

    #[test]
    fn threads_through_empty_forwarders() {
        // entry -> empty -> empty -> target
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let e1 = f.add_block();
            let e2 = f.add_block();
            let target = f.add_block();
            f.branch(p.into(), e1, target);
            f.switch_to(e1);
            f.jump(e2);
            f.switch_to(e2);
            f.jump(target);
            f.switch_to(target);
            f.ret(Some(p.into()));
        });
        let mut m = mb.finish();
        while SimplifyCfg.run(&mut m.funcs[0]) {}
        verify_module(&m).expect("still valid");
        // Both forwarders are gone.
        assert_eq!(m.funcs[0].blocks.len(), 2);
    }

    #[test]
    fn removes_unreachable_blocks() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 0, |f| {
            f.ret(None);
            let dead = f.add_block();
            f.switch_to(dead);
            f.ret(Some(Operand::ImmI(1)));
        });
        let mut m = mb.finish();
        assert!(SimplifyCfg.run(&mut m.funcs[0]));
        assert_eq!(m.funcs[0].blocks.len(), 1);
        verify_module(&m).expect("still valid");
    }

    #[test]
    fn loop_headers_left_intact() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let n = f.param(0);
            let i = f.mov(Operand::ImmI(0));
            f.while_loop(
                |f| Operand::Reg(f.bin(BinOp::Lt, i.into(), n.into())),
                |f| f.bin_to(i, BinOp::Add, i.into(), Operand::ImmI(1)),
            );
            f.ret(Some(i.into()));
        });
        let mut m = mb.finish();
        while SimplifyCfg.run(&mut m.funcs[0]) {}
        verify_module(&m).expect("still valid");
        // The loop back edge survives.
        let dom = encore_analysis::DomTree::compute(&m.funcs[0]);
        let forest = encore_analysis::LoopForest::compute(&m.funcs[0], &dom);
        assert_eq!(forest.loops.len(), 1);
    }
}
