//! # encore-opt
//!
//! Classic scalar optimization passes over the [`encore_ir`] IR. The
//! paper evaluates Encore on applications "compiled with standard -O3
//! optimizations"; these passes play that role for the reproduction's
//! builder-generated kernels — and they double as a stress source for
//! the verification story, since every pass must preserve both program
//! semantics and the soundness of the downstream idempotence analysis
//! (checked by property tests on random programs).
//!
//! Passes:
//!
//! * [`ConstFold`] — block-local constant propagation/folding, including
//!   branch-to-jump rewrites;
//! * [`CopyProp`] — block-local copy propagation;
//! * [`Dce`] — liveness-based dead-code elimination;
//! * [`Licm`] — loop-invariant code motion with preheader insertion;
//! * [`SimplifyCfg`] — jump threading, straight-line block merging,
//!   unreachable-block removal.
//!
//! # Examples
//!
//! ```
//! use encore_ir::{ModuleBuilder, BinOp, Operand};
//! use encore_opt::{optimize_module, OptStats};
//!
//! let mut mb = ModuleBuilder::new("m");
//! mb.function("f", 0, |f| {
//!     let a = f.mov(Operand::ImmI(6));
//!     let b = f.bin(BinOp::Mul, a.into(), Operand::ImmI(7));
//!     let _dead = f.bin(BinOp::Add, b.into(), Operand::ImmI(1));
//!     f.ret(Some(b.into()));
//! });
//! let mut m = mb.finish();
//! let stats: OptStats = optimize_module(&mut m);
//! assert!(stats.iterations >= 1);
//! encore_ir::verify_module(&m).unwrap();
//! ```

#![warn(missing_docs)]

mod constfold;
mod copyprop;
mod dce;
mod licm;
mod simplify_cfg;

pub use constfold::ConstFold;
pub use copyprop::CopyProp;
pub use dce::Dce;
pub use licm::Licm;
pub use simplify_cfg::SimplifyCfg;

use encore_ir::{Function, Module};

/// A function-level optimization pass.
pub trait Pass {
    /// Short pass name for diagnostics.
    fn name(&self) -> &'static str;

    /// Runs the pass; returns `true` if anything changed.
    fn run(&self, func: &mut Function) -> bool;
}

/// Statistics from an [`optimize_module`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OptStats {
    /// Fixpoint iterations over the pass list.
    pub iterations: usize,
    /// Static instructions before optimization.
    pub insts_before: usize,
    /// Static instructions after optimization.
    pub insts_after: usize,
}

impl OptStats {
    /// Fraction of static instructions removed.
    pub fn shrink_fraction(&self) -> f64 {
        if self.insts_before == 0 {
            return 0.0;
        }
        1.0 - self.insts_after as f64 / self.insts_before as f64
    }
}

/// The standard pass list, in application order.
pub fn standard_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(ConstFold),
        Box::new(CopyProp),
        Box::new(Dce),
        Box::new(Licm),
        Box::new(SimplifyCfg),
    ]
}

/// Runs `passes` over every function of `module` until a full sweep
/// changes nothing (capped at 16 iterations).
pub fn optimize_module_with(module: &mut Module, passes: &[Box<dyn Pass>]) -> OptStats {
    let mut stats = OptStats {
        insts_before: module.static_inst_count(),
        ..Default::default()
    };
    for _ in 0..16 {
        let mut changed = false;
        for func in &mut module.funcs {
            for pass in passes {
                changed |= pass.run(func);
            }
        }
        stats.iterations += 1;
        if !changed {
            break;
        }
    }
    stats.insts_after = module.static_inst_count();
    stats
}

/// Runs the [`standard_passes`] to fixpoint.
pub fn optimize_module(module: &mut Module) -> OptStats {
    optimize_module_with(module, &standard_passes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{verify_module, AddrExpr, BinOp, ModuleBuilder, Operand};

    #[test]
    fn pipeline_shrinks_and_verifies() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 2);
        mb.function("f", 1, |f| {
            let p = f.param(0);
            // Constant chain feeding a dead value and a live store.
            let a = f.mov(Operand::ImmI(10));
            let b = f.bin(BinOp::Mul, a.into(), Operand::ImmI(10));
            let _dead = f.bin(BinOp::Add, b.into(), p.into());
            let copy = f.mov(b.into());
            f.store(AddrExpr::global(g, 0), copy.into());
            f.if_else(Operand::ImmI(0), |f| f.store(AddrExpr::global(g, 1), Operand::ImmI(1)), |_| {});
            f.ret(Some(copy.into()));
        });
        let mut m = mb.finish();
        let before = m.static_inst_count();
        let stats = optimize_module(&mut m);
        verify_module(&m).expect("optimized module verifies");
        assert!(stats.insts_after < before, "{m}");
        // The never-taken branch arm is gone.
        assert!(m.funcs[0].blocks.len() <= 3, "{m}");
        assert!(stats.shrink_fraction() > 0.0);
    }

    #[test]
    fn fixpoint_terminates_on_already_optimal_code() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        mb.function("f", 1, |f| {
            let p = f.param(0);
            f.store(AddrExpr::global(g, 0), p.into());
            f.ret(Some(p.into()));
        });
        let mut m = mb.finish();
        let stats = optimize_module(&mut m);
        assert_eq!(stats.iterations, 1);
        assert_eq!(stats.insts_before, stats.insts_after);
    }

    #[test]
    fn workload_modules_survive_optimization() {
        // The whole suite must still verify after optimization.
        for w in encore_workloads_smoke() {
            let mut m = w;
            optimize_module(&mut m);
            verify_module(&m).expect("optimized workload verifies");
        }
    }

    /// A couple of hand-built modules standing in for suite kernels
    /// (the full-suite equivalence check lives in the integration
    /// tests, where the workloads crate is available).
    fn encore_workloads_smoke() -> Vec<encore_ir::Module> {
        let mut out = Vec::new();
        let mut mb = ModuleBuilder::new("loopy");
        let g = mb.global("g", 8);
        mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let two = f.mov(Operand::ImmI(2));
                let v = f.bin(BinOp::Mul, i.into(), two.into());
                f.store(
                    AddrExpr::indexed(encore_ir::MemBase::Global(g), i, 1, 0),
                    v.into(),
                );
            });
            f.ret(None);
        });
        out.push(mb.finish());
        out
    }
}
