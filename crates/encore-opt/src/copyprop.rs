//! Block-local copy propagation.
//!
//! After `dst = mov srcreg`, later uses of `dst` within the block are
//! rewritten to `srcreg` until either register is redefined. This
//! shortens dependence chains and exposes more dead `mov`s to DCE.

use crate::Pass;
use encore_ir::{Function, Inst, Operand, Reg};
use std::collections::HashMap;

/// The copy-propagation pass.
#[derive(Clone, Copy, Default, Debug)]
pub struct CopyProp;

impl Pass for CopyProp {
    fn name(&self) -> &'static str {
        "copyprop"
    }

    fn run(&self, func: &mut Function) -> bool {
        let mut changed = false;
        for block in &mut func.blocks {
            // copy_of[d] = s means d currently holds the same value as s.
            let mut copy_of: HashMap<u32, Reg> = HashMap::new();
            let kill = |copy_of: &mut HashMap<u32, Reg>, r: Reg| {
                copy_of.remove(&r.raw());
                copy_of.retain(|_, src| *src != r);
            };
            for inst in &mut block.insts {
                // Rewrite register operands through the copy map.
                let subst = |op: &mut Operand, copy_of: &HashMap<u32, Reg>, changed: &mut bool| {
                    if let Operand::Reg(r) = op {
                        if let Some(s) = copy_of.get(&r.raw()) {
                            *op = Operand::Reg(*s);
                            *changed = true;
                        }
                    }
                };
                match inst {
                    Inst::Bin { lhs, rhs, .. } => {
                        subst(lhs, &copy_of, &mut changed);
                        subst(rhs, &copy_of, &mut changed);
                    }
                    Inst::Un { src, .. } | Inst::Mov { src, .. } => {
                        subst(src, &copy_of, &mut changed)
                    }
                    Inst::Store { src, .. } => subst(src, &copy_of, &mut changed),
                    Inst::Alloc { size, .. } => subst(size, &copy_of, &mut changed),
                    Inst::Call { args, .. } | Inst::CallExt { args, .. } => {
                        for a in args {
                            subst(a, &copy_of, &mut changed);
                        }
                    }
                    _ => {}
                }
                // Note: address expressions embed `Reg`s directly (not
                // `Operand`s); rewriting them is possible but risks
                // extending live ranges across checkpoint sites, so we
                // leave addresses untouched.
                match inst {
                    Inst::Mov { dst, src: Operand::Reg(s) } if dst != s => {
                        let (d, s) = (*dst, *s);
                        kill(&mut copy_of, d);
                        copy_of.insert(d.raw(), s);
                    }
                    _ => {
                        if let Some(d) = inst.def() {
                            kill(&mut copy_of, d);
                        }
                    }
                }
            }
            // Terminator operands.
            if let Some(t) = &mut block.term {
                match t {
                    encore_ir::Terminator::Branch { cond, .. } => {
                        if let Operand::Reg(r) = cond {
                            if let Some(s) = copy_of.get(&r.raw()) {
                                *cond = Operand::Reg(*s);
                                changed = true;
                            }
                        }
                    }
                    encore_ir::Terminator::Ret(Some(op)) => {
                        if let Operand::Reg(r) = op {
                            if let Some(s) = copy_of.get(&r.raw()) {
                                *op = Operand::Reg(*s);
                                changed = true;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{BinOp, ModuleBuilder};

    #[test]
    fn propagates_through_copies() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let c = f.mov(p.into()); // c = p
            let s = f.bin(BinOp::Add, c.into(), c.into());
            f.ret(Some(s.into()));
        });
        let mut m = mb.finish();
        assert!(CopyProp.run(&mut m.funcs[0]));
        // The add now reads p (r0) directly.
        let p = Reg::new(0);
        assert!(m.funcs[0].blocks[0].insts.iter().any(
            |i| matches!(i, Inst::Bin { lhs: Operand::Reg(a), rhs: Operand::Reg(b), .. }
                if *a == p && *b == p)
        ));
    }

    #[test]
    fn redefinition_kills_copy() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let c = f.mov(p.into());
            f.mov_to(p, Operand::ImmI(99)); // p redefined: c != p now
            let s = f.bin(BinOp::Add, c.into(), Operand::ImmI(0));
            f.ret(Some(s.into()));
        });
        let mut m = mb.finish();
        CopyProp.run(&mut m.funcs[0]);
        let c = Reg::new(1);
        // The add must still read c, not p.
        assert!(m.funcs[0].blocks[0].insts.iter().any(
            |i| matches!(i, Inst::Bin { lhs: Operand::Reg(a), .. } if *a == c)
        ));
    }

    #[test]
    fn ret_operand_propagated() {
        let mut mb = ModuleBuilder::new("m");
        mb.function("f", 1, |f| {
            let p = f.param(0);
            let c = f.mov(p.into());
            f.ret(Some(c.into()));
        });
        let mut m = mb.finish();
        assert!(CopyProp.run(&mut m.funcs[0]));
        assert!(matches!(
            m.funcs[0].blocks[0].term,
            Some(encore_ir::Terminator::Ret(Some(Operand::Reg(r)))) if r == Reg::new(0)
        ));
    }
}
