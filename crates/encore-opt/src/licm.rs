//! Loop-invariant code motion.
//!
//! Hoists pure computations (`Bin`/`Un`/`Mov`) whose operands are
//! loop-invariant out of natural loops into a preheader. Because the IR
//! is not SSA, the classic conservative conditions apply; an instruction
//! defining `dst` in loop `L` is hoisted only when:
//!
//! 1. it is the **only** definition of `dst` inside `L`;
//! 2. `dst` is **not live-in** at the loop header (no first-iteration use
//!    of the pre-loop value);
//! 3. `dst` is **dead on every loop exit** (speculatively executing the
//!    definition before a zero-trip or early-exit loop must be
//!    unobservable; `Bin`/`Un`/`Mov` themselves never fault under this
//!    IR's total arithmetic semantics, so speculation is otherwise free);
//! 4. every register operand has **no definition** inside `L`.
//!
//! One loop is transformed per invocation (preheader creation invalidates
//! the analyses); the pass-manager fixpoint drives it to completion,
//! which also lets chains of invariant instructions hoist one after
//! another.

use crate::Pass;
use encore_analysis::{DomTree, Liveness, LoopForest};
use encore_ir::{BlockId, Function, Inst, Reg, Terminator};
use std::collections::{BTreeMap, BTreeSet};

/// The loop-invariant code-motion pass.
#[derive(Clone, Copy, Default, Debug)]
pub struct Licm;

/// Finds or creates the preheader of the loop headed at `header`:
/// the unique block through which all non-latch entries reach the header.
fn ensure_preheader(
    func: &mut Function,
    header: BlockId,
    loop_blocks: &BTreeSet<BlockId>,
) -> Option<BlockId> {
    let preds = func.predecessors();
    let outside: Vec<BlockId> = preds
        .get(&header)?
        .iter()
        .copied()
        .filter(|p| !loop_blocks.contains(p))
        .collect();
    if outside.is_empty() {
        return None; // entry-block header with no outside edge
    }
    // An existing dedicated preheader: single outside pred whose only
    // successor is the header.
    if outside.len() == 1 {
        let p = outside[0];
        let succs = func.block(p).successors();
        if succs.len() == 1 && succs[0] == header {
            return Some(p);
        }
    }
    // Create one: new block jumping to the header; outside preds retarget.
    let pre = func.add_block();
    func.block_mut(pre).term = Some(Terminator::Jump(header));
    for p in outside {
        if let Some(t) = &mut func.block_mut(p).term {
            t.map_successors(|s| if s == header { pre } else { s });
        }
    }
    Some(pre)
}

impl Pass for Licm {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run(&self, func: &mut Function) -> bool {
        let dom = DomTree::compute(func);
        let forest = LoopForest::compute(func, &dom);
        if forest.irreducible {
            return false;
        }
        let liveness = Liveness::compute(func);

        // Inner-most first; transform at most one loop per invocation.
        for l in &forest.loops {
            // Definition counts per register inside the loop.
            let mut def_count: BTreeMap<Reg, usize> = BTreeMap::new();
            for &b in &l.blocks {
                for inst in &func.block(b).insts {
                    if let Some(d) = inst.def() {
                        *def_count.entry(d).or_insert(0) += 1;
                    }
                }
            }
            let live_at_header = liveness.live_in(l.header);
            // Registers live on some exit edge out of the loop.
            let mut live_at_exit: BTreeSet<Reg> = BTreeSet::new();
            for &e in &l.exiting_blocks(func) {
                for s in func.block(e).successors() {
                    if !l.blocks.contains(&s) {
                        live_at_exit.extend(liveness.live_in(s));
                    }
                }
            }

            // Collect hoistable instructions: (block, index).
            let mut hoists: Vec<(BlockId, usize)> = Vec::new();
            for &b in &l.blocks {
                for (i, inst) in func.block(b).insts.iter().enumerate() {
                    let pure = matches!(inst, Inst::Bin { .. } | Inst::Un { .. } | Inst::Mov { .. });
                    if !pure {
                        continue;
                    }
                    let Some(dst) = inst.def() else { continue };
                    if def_count.get(&dst).copied() != Some(1) {
                        continue;
                    }
                    if live_at_header.contains(&dst) || live_at_exit.contains(&dst) {
                        continue;
                    }
                    let invariant = inst
                        .uses()
                        .iter()
                        .all(|u| def_count.get(u).copied().unwrap_or(0) == 0);
                    if invariant {
                        hoists.push((b, i));
                    }
                }
            }
            if hoists.is_empty() {
                continue;
            }
            let Some(pre) = ensure_preheader(func, l.header, &l.blocks) else {
                continue;
            };
            // Remove in descending index order per block, then append to
            // the preheader in original program order.
            let mut moved: Vec<Inst> = Vec::new();
            let mut by_block: BTreeMap<BlockId, Vec<usize>> = BTreeMap::new();
            for (b, i) in &hoists {
                by_block.entry(*b).or_default().push(*i);
            }
            for (b, mut idxs) in by_block {
                idxs.sort_unstable();
                for &i in &idxs {
                    moved.push(func.block(b).insts[i].clone());
                }
                for &i in idxs.iter().rev() {
                    func.block_mut(b).insts.remove(i);
                }
            }
            let pre_block = func.block_mut(pre);
            let insert_at = pre_block.insts.len();
            for (k, inst) in moved.into_iter().enumerate() {
                pre_block.insts.insert(insert_at + k, inst);
            }
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_ir::{verify_module, AddrExpr, BinOp, ModuleBuilder, Operand};

    fn run_to_fixpoint(func: &mut Function) -> usize {
        let mut n = 0;
        while Licm.run(func) {
            n += 1;
            assert!(n < 64, "LICM did not converge");
        }
        n
    }

    #[test]
    fn hoists_invariant_computation() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 8);
        mb.function("f", 2, |f| {
            let n = f.param(0);
            let scale = f.param(1);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                // scale*3 is invariant; i*inv is not.
                let inv = f.bin(BinOp::Mul, scale.into(), Operand::ImmI(3));
                let v = f.bin(BinOp::Mul, i.into(), inv.into());
                f.store(AddrExpr::indexed(encore_ir::MemBase::Global(g), i, 1, 0), v.into());
            });
            f.ret(None);
        });
        let mut m = mb.finish();
        let before_loop_insts: usize = m.funcs[0].blocks[2].insts.len();
        let hoisted = run_to_fixpoint(&mut m.funcs[0]);
        assert!(hoisted >= 1);
        verify_module(&m).expect("still valid");
        // The loop body shrank by one instruction.
        assert_eq!(m.funcs[0].blocks[2].insts.len(), before_loop_insts - 1);
        // And a preheader now holds the multiply.
        let pre_has_mul = m.funcs[0].blocks.iter().any(|b| {
            b.insts.iter().any(|i| {
                matches!(i, Inst::Bin { op: BinOp::Mul, rhs: Operand::ImmI(3), .. })
            }) && matches!(b.term, Some(Terminator::Jump(_)))
        });
        assert!(pre_has_mul, "{}", m.funcs[0]);
    }

    #[test]
    fn semantics_preserved_after_hoisting() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 8);
        mb.function("f", 2, |f| {
            let n = f.param(0);
            let scale = f.param(1);
            let acc = f.mov(Operand::ImmI(0));
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let inv = f.bin(BinOp::Add, scale.into(), Operand::ImmI(7));
                let v = f.bin(BinOp::Mul, i.into(), inv.into());
                f.bin_to(acc, BinOp::Add, acc.into(), v.into());
                f.store(AddrExpr::indexed(encore_ir::MemBase::Global(g), i, 1, 0), v.into());
            });
            f.ret(Some(acc.into()));
        });
        let m = mb.finish();
        let mut opt = m.clone();
        run_to_fixpoint(&mut opt.funcs[0]);
        verify_module(&opt).expect("valid");
        // Compare behavior through the textual round trip to avoid a sim
        // dependency: structural check that instruction count dropped but
        // the loop is intact.
        assert!(opt.funcs[0].static_inst_count() <= m.funcs[0].static_inst_count());
    }

    #[test]
    fn does_not_hoist_loop_varying_code() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 8);
        mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let v = f.bin(BinOp::Mul, i.into(), Operand::ImmI(2)); // depends on i
                f.store(AddrExpr::indexed(encore_ir::MemBase::Global(g), i, 1, 0), v.into());
            });
            f.ret(None);
        });
        let mut m = mb.finish();
        assert_eq!(run_to_fixpoint(&mut m.funcs[0]), 0);
    }

    #[test]
    fn does_not_hoist_conditional_definitions() {
        // The invariant-looking mov sits in a conditional arm: it does not
        // dominate the loop exit, so hoisting would change `last` when the
        // arm never runs.
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 1);
        mb.function("f", 2, |f| {
            let n = f.param(0);
            let flag = f.param(1);
            let last = f.mov(Operand::ImmI(0));
            f.for_range(Operand::ImmI(0), n.into(), |f, _i| {
                f.if_then(flag.into(), |f| {
                    f.mov_to(last, Operand::ImmI(42));
                });
            });
            f.store(AddrExpr::global(g, 0), last.into());
            f.ret(None);
        });
        let mut m = mb.finish();
        let before = m.funcs[0].clone();
        run_to_fixpoint(&mut m.funcs[0]);
        // `last = 42` must not move (conditional).
        let still_in_arm = m.funcs[0]
            .blocks
            .iter()
            .zip(before.blocks.iter())
            .all(|(a, b)| a.insts.len() == b.insts.len());
        assert!(still_in_arm, "{}", m.funcs[0]);
    }

    #[test]
    fn does_not_hoist_loads_or_stores() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 2);
        mb.function("f", 1, |f| {
            let n = f.param(0);
            f.for_range(Operand::ImmI(0), n.into(), |f, _i| {
                let v = f.load(AddrExpr::global(g, 0)); // memory: not pure
                f.store(AddrExpr::global(g, 1), v.into());
            });
            f.ret(None);
        });
        let mut m = mb.finish();
        assert_eq!(run_to_fixpoint(&mut m.funcs[0]), 0);
    }

    #[test]
    fn hoist_chain_converges_over_iterations() {
        // b depends on a; both invariant. Fixpoint hoists a then b.
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 8);
        mb.function("f", 2, |f| {
            let n = f.param(0);
            let base = f.param(1);
            f.for_range(Operand::ImmI(0), n.into(), |f, i| {
                let a = f.bin(BinOp::Add, base.into(), Operand::ImmI(1));
                let b = f.bin(BinOp::Mul, a.into(), Operand::ImmI(5));
                let v = f.bin(BinOp::Add, b.into(), i.into());
                f.store(AddrExpr::indexed(encore_ir::MemBase::Global(g), i, 1, 0), v.into());
            });
            f.ret(None);
        });
        let mut m = mb.finish();
        let hoisted = run_to_fixpoint(&mut m.funcs[0]);
        assert!(hoisted >= 2, "expected chained hoists, got {hoisted}");
        verify_module(&m).expect("valid");
    }
}
