#!/usr/bin/env bash
# Runs the benchmark suites offline and records machine-readable results
# at the repo root (one JSON object per suite run, appended by the
# in-repo microbench harness via the ENCORE_BENCH_JSON environment
# variable): the analysis suite into BENCH_analysis.json and the
# simulator/SFI-campaign suite into BENCH_sim.json (golden_run and
# campaign_40 rows at 1x — including per-fault-model campaign_40_<model>
# rows for multi_bit/address/control_flow/power_failure and a
# campaign_40_fullscan baseline row that disables the O(dirty)
# incremental state compare so its speedup stays measurable — plus the
# campaign_40_xl / campaign_40_xl_fullscan tier at 10x data scale; the
# suite also prints the probe-cost counters (probes attempted, pages
# hashed, words compared) for the incremental and full-scan paths). Set
# ENCORE_BENCH_LABEL to tag the emitted rows (e.g. "baseline" vs
# "post-change" when comparing in one file); by default rows are
# labeled with the current git commit so results stay attributable
# after the fact.

set -euo pipefail
cd "$(dirname "$0")/.."

if [ -z "${ENCORE_BENCH_LABEL:-}" ]; then
    sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
    dirty=$(git diff --quiet 2>/dev/null || echo "-dirty")
    export ENCORE_BENCH_LABEL="$sha${dirty:-}"
fi
echo "==> labeling rows: $ENCORE_BENCH_LABEL"

# Absolute paths: cargo runs bench binaries with cwd = the package root,
# so a relative path would land inside crates/encore-bench/.
run_suite() {
    local bench="$1" out="$2"
    rm -f "$out"
    echo "==> cargo bench -p encore-bench --bench $bench --offline"
    ENCORE_BENCH_JSON="$PWD/$out" cargo bench -p encore-bench --bench "$bench" --offline
    echo "==> wrote $out"
}

run_suite analysis BENCH_analysis.json
run_suite sim BENCH_sim.json
