#!/usr/bin/env bash
# Runs the analysis benchmark suite offline and records machine-readable
# results in BENCH_analysis.json at the repo root (one JSON object per
# suite, appended by the in-repo microbench harness via the
# ENCORE_BENCH_JSON environment variable).

set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_analysis.json"
rm -f "$out"

# Absolute path: cargo runs bench binaries with cwd = the package root,
# so a relative path would land inside crates/encore-bench/.
echo "==> cargo bench -p encore-bench --bench analysis --offline"
ENCORE_BENCH_JSON="$PWD/$out" cargo bench -p encore-bench --bench analysis --offline

echo "==> wrote $out"
