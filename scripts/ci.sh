#!/usr/bin/env bash
# Pre-merge check: the tier-1 gate, run fully offline.
#
# `--offline` is load-bearing, not an optimization: the workspace has a
# zero-external-dependency policy (see DESIGN.md §7), and building with
# the network forbidden is what enforces it — any crates.io dependency
# that sneaks into a manifest fails this script immediately.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> OK"
