#!/usr/bin/env bash
# Pre-merge check: the tier-1 gate, run fully offline.
#
# `--offline` is load-bearing, not an optimization: the workspace has a
# zero-external-dependency policy (see DESIGN.md §7), and building with
# the network forbidden is what enforces it — any crates.io dependency
# that sneaks into a manifest fails this script immediately.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

# Fixed-seed campaign smoke: exercises the snapshot-and-resume +
# convergence-splice injection path end-to-end on a real workload, once
# per fault model so every sampler and its injection machinery (bit
# flips, multi-bit masks, address corruption, wrong-edge control flow,
# power failure) gets an end-to-end run. Each run is deterministic
# (seeded, single-worker-equivalent results at any worker count), so a
# hang or panic here means the campaign engine regressed even if unit
# tests pass.
echo "==> SFI campaign smoke (fixed seed, per fault model)"
for model in bit-flip multi-bit address control-flow power-failure; do
    echo "==> fault model: $model"
    cargo run --release --offline --example fault_injection_campaign -- rawcaudio 24 50 0 12345 "$model"
done

# Divergence-splice smoke: a fixed-seed campaign on a hand-built kernel
# in which all three early-exit rules (converged / dead-diff / sdc) must
# engage, plus the differential test proving splicing never changes
# outcomes. Catches a splice path that silently stopped firing — a pure
# performance regression invisible to correctness tests.
echo "==> divergence-splice smoke (fixed seed)"
cargo test --release -q --offline --test sfi_campaign -- \
    splice_smoke_all_rules_engage splice_never_changes_campaign_results

# Incremental-diff smoke: a fixed-seed campaign on one real workload
# run under both state-compare paths — the O(dirty) dirty-tracked
# page-hash probes (default) and the retained full-scan reference —
# with the two CampaignReports asserted equal field-for-field. Catches
# a dirty-tracking or page-hash bug that changes what a splice probe
# sees, even if it never changes a final outcome.
echo "==> incremental-diff smoke (fixed seed, both compare paths)"
cargo test --release -q --offline --test sfi_campaign -- \
    incremental_diff_smoke_reports_identical_both_paths

# Differential fuzz smoke: 64 machine-generated programs (fixed seed —
# cases are a pure function of the property name and index) through the
# splice/stride/worker differential property, plus the per-fault-model
# variant and the adversarial-plan resume/scratch differential. The
# acceptance sweep runs 512 cases; 64 here keeps the gate fast while
# still covering a prefix of the same corpus.
echo "==> differential fuzz smoke (64 fixed-seed cases)"
ENCORE_FUZZ_CASES=64 cargo test --release -q --offline --test fuzz_differential -- \
    fuzzed_campaigns_are_splice_stride_and_worker_invariant \
    fuzzed_campaigns_are_invariant_under_every_fault_model \
    fuzzed_campaigns_agree_between_incremental_and_fullscan_diff \
    fuzzed_campaigns_agree_between_diff_paths_under_every_fault_model \
    fuzzed_fault_plans_agree_between_resume_and_scratch

echo "==> OK"
